//! Extension experiments beyond the paper's measured points:
//!
//! 1. Node-count sweep 4→64 on the hierarchical topology (the paper
//!    measured only the 64-node endpoint; this sweep shows where the
//!    curves separate — §IV-A: "the benefits of virtualization are not
//!    only maintained but increased in larger scales").
//! 2. MDS shard-count sweep under the shared-directory storm: the
//!    paper frames the virtualization layer as the enabler for
//!    distributing metadata across multiple servers; this axis
//!    measures that enablement directly.
//! 3. Client-cache sweep under the hot-stat storm: lease TTL × shard
//!    count, measuring how much of the remaining per-op RTT the
//!    client-side metadata cache removes when nothing conflicts.
//! 4. Batching sweep under a bursty create storm: `max_batch_ops`
//!    1 → 4 → 16 at fixed shards, measuring the RTT + group-commit
//!    amortization of the batch/pipeline layer — plus its deliberate
//!    non-wins (sparse mutators pay the delay window, read-only storms
//!    are untouched).
//! 5. Write-behind journal sweep under the same bursty storm: acks at
//!    journal append, sibling-coalesced deferred apply, with the
//!    durability window and the post-ack apply tail (the
//!    crash-consistency cost) reported explicitly.
//! 6. Elastic-policy axis: the shard-count storm sweep carries an
//!    elastic row per count (load-adaptive splitting must keep scaling
//!    where the static policies run out of directories), and a skewed
//!    multi-tenant storm where one tenant takes ~75 % of the load —
//!    the shape both static policies lose to a single hot shard.
//! 7. Failover axis: the same create/stat storm with one scripted
//!    shard crash, swept over crash timing × recovery cost (plain vs
//!    write-behind journal, whose acked-but-unapplied rows recovery
//!    must replay) × shard count. Reports the availability gap,
//!    recovery CPU, retry/NACK counts, lost-acked ops (gated at zero),
//!    and the stat tail through the fault window — next to a
//!    fault-free baseline row from the *same* factory, which must
//!    match the plain storm bit-for-bit.
//! 8. Cascade axis: correlated failures (a crash-loop on one shard
//!    plus a simultaneous rack-partner crash) against the survival
//!    knobs — hot-standby promotion × post-recovery admission control
//!    × loop count × shard count. Standby must shrink the availability
//!    gap below the scripted `loops × down` floor; admission must
//!    shrink the post-recovery makespan on the convoy-visible rows;
//!    lost-acked stays zero everywhere.
//!
//! Alongside the text tables the binary writes `BENCH_scaling.json`
//! (see [`cofs_bench::write_bench_json`]) for machine consumption;
//! `scripts/bench_check.py` gates CI on its monotonicity claims.

use cofs::config::ShardPolicyKind;
use cofs::fault::FaultPlan;
use cofs_bench::{
    cofs_mds_limit, cofs_mds_limit_cached, cofs_mds_limit_elastic, cofs_mds_limit_maybe_batched,
    cofs_mds_limit_tuned, cofs_mds_limit_write_behind, cofs_over_gpfs_on, gpfs_on, smoke_files,
    smoke_or, write_bench_json,
};
use netsim::topology::Topology;
use simcore::time::{SimDuration, SimTime};
use workloads::metarates::{run_phase, MetaOp, MetaratesConfig};
use workloads::report::{
    batch_cells, cache_cells, fault_cells, ms, read_latency_cells, shard_skew,
    shard_utilization_table, Table, BATCH_COLUMNS, CACHE_COLUMNS, FAULT_COLUMNS, READ_LAT_COLUMNS,
};
use workloads::scenarios::{
    CascadeStorm, FailoverStorm, HotStatStorm, SharedDirStorm, SkewedTenantStorm,
};

fn main() {
    let fpn = smoke_files(256);
    println!("== Scaling: create & stat vs node count (hierarchical, {fpn} files/node) ==\n");
    let mut nodes_table = Table::new(vec![
        "nodes",
        "gpfs create",
        "cofs create",
        "gpfs stat",
        "cofs stat",
    ]);
    let node_counts = smoke_or(vec![4, 8], vec![4, 8, 16, 32, 64]);
    for nodes in node_counts {
        let cfg = MetaratesConfig::new(nodes, fpn);
        let topo = || Topology::hierarchical(16);
        let gc = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let cc = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Create);
        let gs = run_phase(&mut gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        let cs = run_phase(&mut cofs_over_gpfs_on(nodes, topo()), &cfg, MetaOp::Stat);
        nodes_table.row(vec![
            nodes.to_string(),
            ms(gc.mean_ms()),
            ms(cc.mean_ms()),
            ms(gs.mean_ms()),
            ms(cs.mean_ms()),
        ]);
    }
    println!("{}", nodes_table.render());

    // ---- shard-count axis (ROADMAP extension, not a paper figure) ----
    // Run in the metadata-service limit (MemFs substrate): over real
    // GPFS the native filesystem's ms-scale creates bound throughput
    // long before the MDS does, which is exactly the bottleneck shift
    // the paper predicts — here we measure the *next* bottleneck.
    // The storm concentrates 512 nodes on 8 hot directories so the
    // static policies run out of parallelism inside the sweep:
    // hash-by-parent can spread 8 dirs over at most 8 shards (its
    // 8- and 16-shard rows tie *exactly*), while the elastic policy
    // splits the hot directories' dentries across the idle shards and
    // must scale monotonically through 16 (`scripts/bench_check.py`
    // gates the elastic rows at *every* swept count; the static claim
    // still stops at the claimed regime). The node count matters
    // twice: 64 clients per directory keep every shard queue-bound
    // *even after* a split doubles each directory's service capacity
    // (a storm that splitting un-saturates only trades queueing for
    // convoy burstiness), and the long per-client op streams amortize
    // the extra per-(node, shard) session establishments that a wider
    // bucket fan-out forces every client to pay.
    let storm = SharedDirStorm {
        nodes: if cofs_bench::smoke_mode() { 48 } else { 512 },
        dirs: 8,
        files_per_node: smoke_files(8),
        ..SharedDirStorm::default()
    };
    println!(
        "== Scaling: shared-directory storm vs MDS shard count \
         ({} nodes, {} dirs, {} files/node, {} stats/create, \
         metadata-service limit) ==\n",
        storm.nodes, storm.dirs, storm.files_per_node, storm.stats_per_create
    );
    let mut headers = vec![
        "shards",
        "policy",
        "create (ms)",
        "makespan (ms)",
        "creates/s",
        "skew",
    ];
    headers.extend(READ_LAT_COLUMNS);
    let mut shards_table = Table::new(headers);
    let shard_counts = smoke_or(vec![1, 2], vec![1, 2, 4, 8, 16]);
    let mut last_usage = None;
    for shards in shard_counts.clone() {
        let static_policy = if shards == 1 {
            ShardPolicyKind::Single
        } else {
            ShardPolicyKind::HashByParent
        };
        for elastic in [false, true] {
            let mut fs = if elastic {
                cofs_mds_limit_elastic(shards)
            } else {
                cofs_mds_limit(shards, static_policy)
            };
            let r = storm.run(&mut fs);
            let mut row = vec![
                shards.to_string(),
                fs.mds_cluster().policy().label().into(),
                ms(r.mean_create_ms),
                ms(r.makespan.as_millis_f64()),
                format!("{:.0}", r.creates_per_sec()),
                format!("{:.2}", shard_skew(&r.per_shard)),
            ];
            row.extend(read_latency_cells(r.stat_p50_p99_ms));
            shards_table.row(row);
            if elastic {
                last_usage = Some((r.per_shard, r.makespan));
            }
        }
    }
    println!("{}", shards_table.render());
    let (usage, usage_makespan) = last_usage.expect("shard sweep ran");
    println!("Per-shard load at the largest shard count (elastic):\n");
    let usage_table = shard_utilization_table(&usage, usage_makespan);
    println!("{}", usage_table.render());

    // ---- skewed-tenant axis: the workload both static policies lose --
    // One tenant directory takes ~75 % of all creates. Subtree
    // partitioning pins the whole hot tenant to one shard,
    // hash-by-parent pins the hot *directory* to one shard just the
    // same — so both saturate one shard however many exist. The
    // elastic policy splits the hot directory's dentries across shards
    // once its measured rate crosses the split threshold, so its
    // makespan must stay at or below the best static row at every
    // swept shard count (`scripts/bench_check.py` gates this).
    let skewed = SkewedTenantStorm {
        files_per_node: smoke_files(32),
        ..SkewedTenantStorm::default()
    };
    println!(
        "== Scaling: skewed multi-tenant storm vs shard policy \
         ({} nodes, {} tenants, {} files/node, ~75% on one tenant, \
         metadata-service limit) ==\n",
        skewed.nodes, skewed.tenants, skewed.files_per_node
    );
    let mut skew_table = Table::new(vec![
        "shards",
        "policy",
        "create (ms)",
        "makespan (ms)",
        "creates/s",
        "skew",
    ]);
    for shards in smoke_or(vec![2], vec![2, 4, 8, 16]) {
        for kind in ["hash-parent", "subtree", "elastic"] {
            let mut fs = match kind {
                "hash-parent" => cofs_mds_limit(shards, ShardPolicyKind::HashByParent),
                "subtree" => cofs_mds_limit(shards, ShardPolicyKind::Subtree),
                _ => cofs_mds_limit_elastic(shards),
            };
            let r = skewed.run(&mut fs);
            skew_table.row(vec![
                shards.to_string(),
                fs.mds_cluster().policy().label().into(),
                ms(r.mean_create_ms),
                ms(r.makespan.as_millis_f64()),
                format!("{:.0}", r.creates_per_sec()),
                format!("{:.2}", shard_skew(&r.per_shard)),
            ]);
        }
    }
    println!("{}", skew_table.render());

    // ---- client-cache axis: hot-stat storm, lease TTL × shards ----
    // The cache's best case: a read-only tree every node polls. With
    // leases the RTT is paid once per (node, path) per TTL window, so
    // makespan collapses toward the FUSE dispatch floor whatever the
    // shard count — and the shard sweep shows caching and sharding
    // compose (hits bypass the shard queues entirely).
    let hot = HotStatStorm {
        nodes: cofs_bench::smoke_nodes(16),
        rounds: if cofs_bench::smoke_mode() { 3 } else { 8 },
        ..HotStatStorm::default()
    };
    println!(
        "== Scaling: hot-stat storm vs client cache \
         ({} nodes, {} dirs × {} files, {} rounds, metadata-service limit) ==\n",
        hot.nodes, hot.dirs, hot.files_per_dir, hot.rounds
    );
    let mut headers = vec!["shards", "cache ttl", "stat (ms)", "makespan (ms)"];
    headers.extend(CACHE_COLUMNS);
    let mut cache_table = Table::new(headers);
    let ttls = smoke_or(
        vec![None, Some(SimDuration::from_secs(10))],
        vec![
            None,
            Some(SimDuration::from_millis(2)),
            Some(SimDuration::from_millis(50)),
            Some(SimDuration::from_secs(10)),
        ],
    );
    for shards in shard_counts {
        let policy = if shards == 1 {
            ShardPolicyKind::Single
        } else {
            ShardPolicyKind::HashByParent
        };
        for ttl in &ttls {
            let mut fs = match ttl {
                None => cofs_mds_limit(shards, policy),
                Some(ttl) => cofs_mds_limit_cached(shards, policy, *ttl),
            };
            let r = hot.run(&mut fs);
            let mut row = vec![
                shards.to_string(),
                ttl.map_or("off".into(), |t| format!("{:.0}ms", t.as_millis_f64())),
                ms(r.mean_stat_ms),
                ms(r.makespan.as_millis_f64()),
            ];
            row.extend(cache_cells(r.cache.as_ref()));
            cache_table.row(row);
        }
    }
    println!("{}", cache_table.render());

    // ---- batching axis: bursty create storm, max_batch_ops sweep ----
    // Fixed shards, creates arriving in bursts (the untar/compile
    // pattern SharedDirStorm.burst models), no interleaved stats: the
    // polling axis belongs to the cache sweep above, and synchronous
    // reads behind batched create lumps would measure head-of-line
    // blocking instead of the mutation path. Here the pipeline
    // saturates the shard CPUs, so RTT amortization and shard-side
    // group commit compound and the storm makespan must improve
    // monotonically 1 → 4 → 16 (`scripts/bench_check.py` enforces this
    // on the JSON report).
    let bstorm = SharedDirStorm {
        nodes: cofs_bench::smoke_nodes(16),
        dirs: 8,
        files_per_node: smoke_files(64),
        stats_per_create: 0,
        burst: 16,
        ..SharedDirStorm::default()
    };
    println!(
        "== Scaling: shared-directory storm vs batching \
         ({} nodes, {} dirs, {} files/node in bursts of {}, 2 shards, \
         metadata-service limit) ==\n",
        bstorm.nodes, bstorm.dirs, bstorm.files_per_node, bstorm.burst
    );
    let mut headers = vec!["batching", "create (ms)", "makespan (ms)"];
    headers.extend(READ_LAT_COLUMNS);
    headers.extend(BATCH_COLUMNS);
    let mut batch_table = Table::new(headers);
    for max_ops in [None, Some(1), Some(4), Some(16)] {
        let mut fs = cofs_mds_limit_maybe_batched(2, ShardPolicyKind::HashByParent, max_ops);
        let r = bstorm.run(&mut fs);
        let mut row = vec![
            max_ops.map_or("off".into(), |k| k.to_string()),
            ms(r.mean_create_ms),
            ms(r.makespan.as_millis_f64()),
        ];
        row.extend(read_latency_cells(r.stat_p50_p99_ms));
        row.extend(batch_cells(r.batch.as_ref()));
        batch_table.row(row);
    }
    println!("{}", batch_table.render());

    // ---- memoization axis: the same bursty storm, batch pricing by
    // deduplicated read set ----
    // At 16-op batches >90% of a batch's service time is per-op row
    // reads, and a batch into one directory resolves the same parent
    // chain 16 times. Memoized pricing charges each distinct chain row
    // once per batch, so every batch size must get strictly cheaper
    // with memoization on and the 16-op memoized storm must beat PR 4's
    // unmemoized ceiling (`scripts/bench_check.py` gates both).
    println!(
        "== Scaling: bursty storm vs per-batch read memoization \
         ({} nodes, {} dirs, {} files/node in bursts of {}, 2 shards) ==\n",
        bstorm.nodes, bstorm.dirs, bstorm.files_per_node, bstorm.burst
    );
    let mut headers = vec!["batching", "memo", "create (ms)", "makespan (ms)"];
    headers.extend(READ_LAT_COLUMNS);
    headers.extend(["reads charged", "reads memoized"]);
    let mut memo_table = Table::new(headers);
    for max_ops in [None, Some(1), Some(4), Some(16)] {
        for memo in [false, true] {
            if memo && max_ops.is_none() {
                continue; // memoization dedupes within batches only
            }
            let mut fs =
                cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, max_ops, memo, false);
            let r = bstorm.run(&mut fs);
            let charged: u64 = r.per_shard.iter().map(|u| u.reads_charged).sum();
            let memoized: u64 = r.per_shard.iter().map(|u| u.reads_memoized).sum();
            let mut row = vec![
                max_ops.map_or("off".into(), |k| k.to_string()),
                if memo { "on" } else { "off" }.to_string(),
                ms(r.mean_create_ms),
                ms(r.makespan.as_millis_f64()),
            ];
            row.extend(read_latency_cells(r.stat_p50_p99_ms));
            row.extend([charged.to_string(), memoized.to_string()]);
            memo_table.row(row);
        }
    }
    println!("{}", memo_table.render());

    // ---- write-behind axis: the same bursty storm, acks at journal
    // append, sibling-coalesced deferred apply ----
    // The memoized 16-op batch still pays a full group commit (writes
    // priced row by row) before the ack. Write-behind acks after one
    // sequential journal append and applies the rows behind the ack,
    // coalescing same-parent sibling dentry updates so a 16-create
    // burst into one directory touches the parent row once per batch.
    // Every swept batch size must be no slower with the journal on,
    // and the 16-op journaled storm must beat PR 6's memoized ceiling
    // (`scripts/bench_check.py` gates both, plus coalesced > 0). The
    // sweep starts at 4-op batches: a singleton batch has nothing to
    // coalesce, so under CPU saturation it pays the append as pure tax
    // — the ablation binary shows that non-win honestly. The
    // crash-consistency cost is explicit: "apply tail" is how long
    // after the last ack the final rows land.
    {
        let wb = cofs::config::WriteBehindConfig::enabled();
        println!(
            "== Scaling: bursty storm vs write-behind journal \
             ({} nodes, {} dirs, {} files/node in bursts of {}, 2 shards, \
             memoization on, durability window {} ops / {:.0} ms) ==\n",
            bstorm.nodes,
            bstorm.dirs,
            bstorm.files_per_node,
            bstorm.burst,
            wb.max_unapplied_ops,
            wb.max_unapplied_window.as_millis_f64()
        );
    }
    let mut headers = vec!["batching", "write-behind", "create (ms)", "makespan (ms)"];
    headers.extend(READ_LAT_COLUMNS);
    headers.extend(["journal", "coalesced", "apply lag (ms)", "apply tail (ms)"]);
    let mut wb_table = Table::new(headers);
    for max_ops in [Some(4), Some(8), Some(16)] {
        for behind in [false, true] {
            let k = max_ops.expect("write-behind axis always batches");
            let mut fs = if behind {
                cofs_mds_limit_write_behind(2, ShardPolicyKind::HashByParent, k, true)
            } else {
                cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, max_ops, true, false)
            };
            let r = bstorm.run(&mut fs);
            let appends: u64 = r.per_shard.iter().map(|u| u.journal_appends).sum();
            let coalesced: u64 = r.per_shard.iter().map(|u| u.rows_coalesced).sum();
            let lag = r
                .per_shard
                .iter()
                .map(|u| u.apply_lag)
                .max()
                .unwrap_or(SimDuration::ZERO);
            let mut row = vec![
                k.to_string(),
                if behind { "on" } else { "off" }.to_string(),
                ms(r.mean_create_ms),
                ms(r.makespan.as_millis_f64()),
            ];
            row.extend(read_latency_cells(r.stat_p50_p99_ms));
            row.extend([
                appends.to_string(),
                coalesced.to_string(),
                ms(lag.as_millis_f64()),
                ms(r.apply_tail_ms),
            ]);
            wb_table.row(row);
        }
    }
    println!("{}", wb_table.render());

    // ---- read-priority axis: mixed stat+create storm, lane × batch ----
    // The ablation's round-robin row shows mixed storms gain nothing
    // from batching: synchronous stats queue behind multi-op batch
    // lumps, so stat p99 *grows* with max_batch_ops under FIFO. The
    // priority lane lets reads bypass queued (not in-service) lumps —
    // stat p99 must stop growing with batch size while the storm's
    // makespan keeps its batching win (`scripts/bench_check.py` gates
    // the tail claims).
    let mstorm = SharedDirStorm::mixed(cofs_bench::smoke_nodes(16), smoke_files(32));
    println!(
        "== Scaling: mixed stat+create storm vs read priority \
         ({} nodes, {} dirs, {} files/node in bursts of {}, \
         {} stats/create, 2 shards) ==\n",
        mstorm.nodes, mstorm.dirs, mstorm.files_per_node, mstorm.burst, mstorm.stats_per_create
    );
    let mut headers = vec!["batching", "lane"];
    headers.extend(READ_LAT_COLUMNS);
    headers.extend(["makespan (ms)", "bypasses"]);
    let mut prio_table = Table::new(headers);
    for max_ops in [None, Some(4), Some(16)] {
        for priority in [false, true] {
            let mut fs =
                cofs_mds_limit_tuned(2, ShardPolicyKind::HashByParent, max_ops, false, priority);
            let r = mstorm.run(&mut fs);
            let bypasses: u64 = r.per_shard.iter().map(|u| u.read_bypasses).sum();
            let mut row = vec![
                max_ops.map_or("off".into(), |k| k.to_string()),
                if priority { "priority" } else { "fifo" }.to_string(),
            ];
            row.extend(read_latency_cells(r.stat_p50_p99_ms));
            row.push(ms(r.makespan.as_millis_f64()));
            row.push(bypasses.to_string());
            prio_table.row(row);
        }
    }
    println!("{}", prio_table.render());

    // ---- batching non-wins: sparse mutators and read-only storms ----
    // The same layer must NOT pay for itself where it cannot help: a
    // sparse mutator's lone ops wait out the delay window before going
    // on the wire (the Nagle tax on completion), and a read-only storm
    // never batches at all — its makespan must be untouched.
    let sparse = SharedDirStorm {
        nodes: cofs_bench::smoke_nodes(8),
        dirs: 8,
        files_per_node: 2,
        stats_per_create: 0,
        ..SharedDirStorm::default()
    };
    println!(
        "== Scaling: batching non-wins (sparse: {} nodes × {} lone creates; \
         hot-stat: read-only) ==\n",
        sparse.nodes, sparse.files_per_node
    );
    let hot_nw = HotStatStorm {
        nodes: cofs_bench::smoke_nodes(8),
        rounds: if cofs_bench::smoke_mode() { 2 } else { 4 },
        ..HotStatStorm::default()
    };
    let mut headers = vec!["workload", "batching", "makespan (ms)"];
    headers.extend(BATCH_COLUMNS);
    let mut nonwin_table = Table::new(headers);
    for max_ops in [None, Some(16)] {
        let label = max_ops.map_or("off".to_string(), |k| k.to_string());
        let stack = || cofs_mds_limit_maybe_batched(4, ShardPolicyKind::HashByParent, max_ops);
        for (wl, r) in [
            ("sparse creates", sparse.run(&mut stack())),
            ("hot-stat (read-only)", hot_nw.run(&mut stack())),
        ] {
            let mut row = vec![
                wl.to_string(),
                label.clone(),
                ms(r.makespan.as_millis_f64()),
            ];
            row.extend(batch_cells(r.batch.as_ref()));
            nonwin_table.row(row);
        }
    }
    println!("{}", nonwin_table.render());

    // ---- failover axis: crash timing × recovery cost × shard count --
    // One scripted crash of shard 0 mid-storm. The client rides it out
    // on bounded retries (nothing wedges, `errors` counts the rare
    // retry-exhausted steps), crashes fence every lease the shard
    // granted, and with the write-behind journal on, recovery must
    // replay the acked-but-unapplied rows before serving — priced as
    // the "recovery (ms)" column on top of the scripted "down" window.
    // `scripts/bench_check.py` gates lost-acked at zero on every row,
    // nacks > 0 on every crash row, and the crashed makespan against
    // baseline + gap + recovery slack. The apply-lag/tail columns make
    // the post-crash durability window machine-checkable alongside the
    // write-behind axis above.
    let fstorm = FailoverStorm {
        nodes: cofs_bench::smoke_nodes(8),
        files_per_node: smoke_files(16),
        ..FailoverStorm::default()
    };
    println!(
        "== Scaling: failover storm vs crash timing, recovery cost, shard count \
         ({} nodes, {} dirs, {} files/node, {} stats/create, one crash of d0's shard, \
         metadata-service limit) ==\n",
        fstorm.nodes, fstorm.dirs, fstorm.files_per_node, fstorm.stats_per_create
    );
    let mut headers = vec![
        "shards",
        "journal",
        "crash at (ms)",
        "down (ms)",
        "create (ms)",
        "makespan (ms)",
    ];
    headers.extend(READ_LAT_COLUMNS);
    headers.extend(FAULT_COLUMNS);
    headers.extend(["apply lag (ms)", "apply tail (ms)"]);
    let mut failover_table = Table::new(headers);
    let crash_windows: Vec<Option<(SimTime, SimDuration)>> = smoke_or(
        vec![
            None,
            Some((SimTime::from_millis(2), SimDuration::from_millis(5))),
        ],
        vec![
            None,
            Some((SimTime::from_millis(2), SimDuration::from_millis(5))),
            Some((SimTime::from_millis(5), SimDuration::from_millis(5))),
            Some((SimTime::from_millis(5), SimDuration::from_millis(20))),
        ],
    );
    for shards in smoke_or(vec![2], vec![2, 4, 8]) {
        // Crash the shard serving the storm's first hot directory —
        // `ShardId(0)` can end up dirless under hash-by-parent at wider
        // shard counts, and an unobserved crash would make the row a
        // silent baseline.
        let victim = cofs_bench::cofs_failover(shards, FaultPlan::default(), false)
            .mds_cluster()
            .route(&vfs::path::vpath("/failover/d0/f"));
        for journal in [false, true] {
            for window in &crash_windows {
                let plan = match window {
                    None => FaultPlan::default(),
                    Some((at, down)) => FaultPlan::default().crash(victim, *at, *down),
                };
                let mut fs = cofs_bench::cofs_failover(shards, plan, journal);
                let r = fstorm.run(&mut fs);
                let lag = r
                    .per_shard
                    .iter()
                    .map(|u| u.apply_lag)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let mut row = vec![
                    shards.to_string(),
                    if journal { "on" } else { "off" }.to_string(),
                    window.map_or("-".into(), |(at, _)| ms(at.as_millis_f64())),
                    window.map_or("-".into(), |(_, down)| ms(down.as_millis_f64())),
                    ms(r.mean_create_ms),
                    ms(r.makespan.as_millis_f64()),
                ];
                row.extend(read_latency_cells(r.stat_p50_p99_ms));
                row.extend(fault_cells(r.fault.as_ref()));
                row.extend([ms(lag.as_millis_f64()), ms(r.apply_tail_ms)]);
                failover_table.row(row);
            }
        }
    }
    println!("{}", failover_table.render());

    // ---- cascade axis: correlated failures × standby × admission ----
    // Rack crashes and crash-loops against the survival knobs. Every
    // row keeps write-behind journaling on (standby promotion ships
    // journal appends, so it requires the journal); the knobs-off rows
    // are the scripted-restart path of the failover axis above, the
    // gate's comparison anchor. `scripts/bench_check.py` gates:
    // standby strictly shrinks the availability gap versus the
    // knobs-matched restart row and beats the `loops × down` scripted
    // floor; admission strictly shrinks the post-recovery makespan on
    // the convoy-visible (standby-off) rows; lost-acked stays zero on
    // every row.
    let cstorm = CascadeStorm {
        nodes: cofs_bench::smoke_nodes(8),
        files_per_node: smoke_files(16),
        ..CascadeStorm::default()
    };
    let down = SimDuration::from_millis(10);
    println!(
        "== Scaling: cascade storm vs correlated failures ({} nodes, {} dirs, \
         {} files/node, {} stats/create; crash-loop of d0's shard from 2 ms every \
         14 ms × loops, rack partner d1's shard at 2 ms, down {} ms each, \
         write-behind on) ==\n",
        cstorm.nodes,
        cstorm.dirs,
        cstorm.files_per_node,
        cstorm.stats_per_create,
        down.as_millis(),
    );
    let mut headers = vec![
        "shards",
        "loops",
        "standby",
        "admission",
        "down (ms)",
        "create (ms)",
        "makespan (ms)",
    ];
    headers.extend(FAULT_COLUMNS);
    let mut cascade_table = Table::new(headers);
    for shards in smoke_or(vec![2], vec![2, 4, 8]) {
        let probe = cofs_bench::cofs_cascade(shards, FaultPlan::default(), false, false);
        let v0 = probe
            .mds_cluster()
            .route(&vfs::path::vpath("/cascade/d0/f"));
        let v1 = probe
            .mds_cluster()
            .route(&vfs::path::vpath("/cascade/d1/f"));
        // The rack partner is d1's shard when it differs from d0's —
        // under hash-by-parent at narrow counts they can coincide,
        // leaving a pure crash-loop row.
        let partner = if v1 == v0 { vec![] } else { vec![v1] };
        // Fault-free baseline from the same factory: the makespan
        // anchor the stretch gates divide by.
        let base = cstorm.run(&mut cofs_bench::cofs_cascade(
            shards,
            FaultPlan::default(),
            false,
            false,
        ));
        let mut row = vec![
            shards.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            ms(base.mean_create_ms),
            ms(base.makespan.as_millis_f64()),
        ];
        row.extend(fault_cells(base.fault.as_ref()));
        cascade_table.row(row);
        for loops in smoke_or(vec![1u32], vec![1, 3]) {
            for standby in [false, true] {
                for admission in [false, true] {
                    let plan = FaultPlan::default()
                        .crash_loop(
                            v0,
                            SimTime::from_millis(2),
                            SimDuration::from_millis(14),
                            down,
                            loops,
                        )
                        .rack(&partner, SimTime::from_millis(2), down);
                    let mut fs = cofs_bench::cofs_cascade(shards, plan, standby, admission);
                    let r = cstorm.run(&mut fs);
                    let mut row = vec![
                        shards.to_string(),
                        loops.to_string(),
                        if standby { "on" } else { "off" }.to_string(),
                        if admission { "on" } else { "off" }.to_string(),
                        ms(down.as_millis_f64()),
                        ms(r.mean_create_ms),
                        ms(r.makespan.as_millis_f64()),
                    ];
                    row.extend(fault_cells(r.fault.as_ref()));
                    cascade_table.row(row);
                }
            }
        }
    }
    println!("{}", cascade_table.render());

    match write_bench_json(
        "scaling",
        &[
            ("create & stat vs node count", &nodes_table),
            ("shared-directory storm vs shard count", &shards_table),
            ("per-shard load at largest shard count", &usage_table),
            ("skewed multi-tenant storm vs shard policy", &skew_table),
            ("hot-stat storm vs client cache", &cache_table),
            ("shared-directory storm vs batching", &batch_table),
            ("bursty storm vs read memoization", &memo_table),
            ("bursty storm vs write-behind journal", &wb_table),
            ("mixed stat+create storm vs read priority", &prio_table),
            ("batching non-wins", &nonwin_table),
            ("failover storm vs crash timing", &failover_table),
            ("cascade storm vs correlated failures", &cascade_table),
        ],
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_scaling.json: {e}"),
    }
}
