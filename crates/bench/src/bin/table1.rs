//! Regenerates **paper Table I**: "Impact of COFS on data transfers,
//! depending on use pattern" — IOR aggregate data rates for
//! {sequential, random} × {read, write} × {separate files, single
//! shared file}, GPFS vs. COFS over GPFS, across aggregate sizes and
//! node counts.
//!
//! Expected shape (paper §IV-B): COFS ≈ GPFS everywhere except
//! (a) small separate-file reads (< 32 MB per node, which fit the GPFS
//! page pool) where COFS suffers an important slowdown; (b) separate-
//! file sequential writes, where GPFS degrades with node count (open
//! serialization) and COFS does not; (c) single-node writes, where
//! COFS pays the FUSE copy.

use cofs_bench::{cofs_over_gpfs, gpfs, smoke_or};
use workloads::ior::{run_ior_op, Access, FileMode, IoOp, IorConfig};
use workloads::report::{mibs, Table};

const MB: u64 = 1024 * 1024;

fn main() {
    println!("== Table I: IOR aggregate data rates (MiB/s), GPFS vs COFS over GPFS ==\n");
    let sizes = smoke_or(
        vec![(256 * MB, "256MB")],
        vec![(256 * MB, "256MB"), (1024 * MB, "1GB"), (4096 * MB, "4GB")],
    );
    let node_counts = smoke_or(vec![1, 4], vec![1, 4, 8]);
    for (access, op) in [
        (Access::Sequential, IoOp::Read),
        (Access::Random, IoOp::Read),
        (Access::Sequential, IoOp::Write),
        (Access::Random, IoOp::Write),
    ] {
        for file_mode in [FileMode::FilePerProcess, FileMode::Shared] {
            let mut table = Table::new(vec![
                "aggregate",
                "nodes",
                "per-node",
                "gpfs (MiB/s)",
                "cofs (MiB/s)",
                "cofs/gpfs",
            ]);
            for &(bytes, label) in &sizes {
                for &nodes in &node_counts {
                    let cfg = IorConfig::new(nodes, bytes, file_mode, access);
                    let mut g = gpfs(nodes);
                    let rg = run_ior_op(&mut g, &cfg, op);
                    let mut c = cofs_over_gpfs(nodes);
                    let rc = run_ior_op(&mut c, &cfg, op);
                    let ratio = rc.aggregate_mib_s / rg.aggregate_mib_s.max(1e-9);
                    table.row(vec![
                        label.to_string(),
                        nodes.to_string(),
                        format!("{}MB", bytes / MB / nodes as u64),
                        mibs(rg.aggregate_mib_s),
                        mibs(rc.aggregate_mib_s),
                        format!("{ratio:.2}"),
                    ]);
                }
            }
            println!(
                "{} {} / {} files:\n{}",
                access.label(),
                op.label(),
                file_mode.label(),
                table.render()
            );
        }
    }
}
