//! Smoke tests: every figure/table binary must run to completion and
//! print its report header, so entrypoints cannot silently rot.
//!
//! `COFS_SMOKE=1` makes the binaries run drastically reduced sweeps
//! (see `cofs_bench::smoke_mode`), keeping this suite fast while still
//! executing the real `main` of each artifact.

use std::process::Command;

fn run_smoke(exe: &str, expect: &str) {
    let out = Command::new(exe)
        .env("COFS_SMOKE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(expect),
        "{exe} output missing {expect:?}; got:\n{stdout}"
    );
}

#[test]
fn fig1_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig1"), "Fig 1");
}

#[test]
fn fig2_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig2"), "Fig 2");
}

#[test]
fn fig4_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig4"), "Fig 4");
}

#[test]
fn fig5_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig5"), "Fig 5");
}

#[test]
fn fig6_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig6"), "Fig 6");
}

#[test]
fn table1_runs() {
    run_smoke(env!("CARGO_BIN_EXE_table1"), "Table I");
}

#[test]
fn scaling_runs() {
    run_smoke(env!("CARGO_BIN_EXE_scaling"), "Scaling");
}

#[test]
fn ablation_runs() {
    run_smoke(env!("CARGO_BIN_EXE_ablation"), "Ablations");
}
