//! Smoke tests: every figure/table binary must run to completion and
//! print its report header, so entrypoints cannot silently rot.
//!
//! `COFS_SMOKE=1` makes the binaries run drastically reduced sweeps
//! (see `cofs_bench::smoke_mode`), keeping this suite fast while still
//! executing the real `main` of each artifact.

use std::process::Command;

fn run_smoke(exe: &str, expect: &str) {
    let out = Command::new(exe)
        .env("COFS_SMOKE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(expect),
        "{exe} output missing {expect:?}; got:\n{stdout}"
    );
}

/// Runs a sweep binary with `COFS_BENCH_OUT` pointed at a scratch
/// directory and returns the `BENCH_<name>.json` it must write.
fn run_smoke_with_json(exe: &str, expect: &str, name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("cofs-smoke-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(exe)
        .env("COFS_SMOKE", "1")
        .env("COFS_BENCH_OUT", &dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(expect),
        "{exe} output missing {expect:?}; got:\n{stdout}"
    );
    let json_path = dir.join(format!("BENCH_{name}.json"));
    let json = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| panic!("{exe} did not write {}: {e}", json_path.display()));
    std::fs::remove_dir_all(&dir).ok();
    json
}

#[test]
fn fig1_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig1"), "Fig 1");
}

#[test]
fn fig2_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig2"), "Fig 2");
}

#[test]
fn fig4_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig4"), "Fig 4");
}

#[test]
fn fig5_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig5"), "Fig 5");
}

#[test]
fn fig6_runs() {
    run_smoke(env!("CARGO_BIN_EXE_fig6"), "Fig 6");
}

#[test]
fn table1_runs() {
    run_smoke(env!("CARGO_BIN_EXE_table1"), "Table I");
}

#[test]
fn scaling_runs_and_writes_json() {
    let json = run_smoke_with_json(env!("CARGO_BIN_EXE_scaling"), "Scaling", "scaling");
    assert!(json.contains("\"sections\""), "{json}");
    assert!(json.contains("hot-stat storm vs client cache"), "{json}");
}

#[test]
fn ablation_runs_and_writes_json() {
    let json = run_smoke_with_json(env!("CARGO_BIN_EXE_ablation"), "Ablations", "ablation");
    assert!(json.contains("client-cache ablation"), "{json}");
    assert!(json.contains("mds sharding ablation"), "{json}");
}
