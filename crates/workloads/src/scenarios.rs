//! The motivating application scenarios from the paper's introduction.
//!
//! §II: "Large parallel applications usually create per-node auxiliary
//! files and/or generate checkpoints by having each node dump its
//! relevant data into a different file; not unlikely, applications
//! place these files in a common directory. On the other hand, smaller
//! applications are typically launched in large bunches, and users
//! configure them to write the different output files also in a shared
//! directory."

use crate::target::BenchTarget;
use cofs::batch::BatchStats;
use cofs::client_cache::CacheStats;
use cofs::fault::FaultSummary;
use cofs::mds_cluster::ShardUsage;
use netsim::ids::{NodeId, Pid};
use simcore::time::SimTime;
use vfs::driver::{run, Action, ClientScript, RunReport};
use vfs::error::Errno;
use vfs::fs::OpCtx;
use vfs::path::{vpath, VPath};
use vfs::types::{Mode, OpenFlags};

/// A parallel application writing a checkpoint: every node dumps its
/// state into its own file in a common directory.
#[derive(Debug, Clone)]
pub struct CheckpointStorm {
    /// Nodes dumping state.
    pub nodes: usize,
    /// Bytes each node writes per checkpoint.
    pub bytes_per_node: u64,
    /// Checkpoint rounds.
    pub rounds: usize,
    /// The common directory.
    pub dir: VPath,
}

impl Default for CheckpointStorm {
    fn default() -> Self {
        CheckpointStorm {
            nodes: 8,
            bytes_per_node: 4 * 1024 * 1024,
            rounds: 3,
            dir: vpath("/checkpoints"),
        }
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Virtual wall time to complete the whole scenario.
    pub makespan: SimTime,
    /// Mean time per file creation, in ms (0.0 when the scenario
    /// creates nothing in its measured phase).
    pub mean_create_ms: f64,
    /// Mean time per `stat`, in ms (0.0 when unmeasured).
    pub mean_stat_ms: f64,
    /// Median and 99th-percentile `stat` latency, in ms (`None` when
    /// the scenario measured no stats). Makespans hide head-of-line
    /// blocking of synchronous reads behind batch service lumps; these
    /// tail columns expose it per storm.
    pub stat_p50_p99_ms: Option<(f64, f64)>,
    /// Total files created.
    pub files: usize,
    /// Per-shard metadata-service load during the measured phase
    /// (empty when the target has no sharded MDS).
    pub per_shard: Vec<ShardUsage>,
    /// Client-cache counters during the measured phase (`None` when
    /// the target has no cache or it is disabled).
    pub cache: Option<CacheStats>,
    /// Batching counters during the measured phase (`None` when the
    /// target has no batch pipeline or it is disabled). The makespan
    /// already folds in the end-of-phase drain of buffered batches.
    pub batch: Option<BatchStats>,
    /// How far past the makespan the last acked-but-unapplied
    /// write-behind batch finishes applying, in ms — the scenario's
    /// crash-consistency window. Zero without write-behind journaling:
    /// every ack is durable. The makespan deliberately does *not* fold
    /// this in (acks are what clients observe); reports print it
    /// alongside instead.
    pub apply_tail_ms: f64,
    /// Fault/recovery accounting (`None` without an armed fault plan,
    /// so fault-free results stay byte-identical to the pre-fault
    /// shape). Filled by [`FailoverStorm`] — including the count of
    /// retry-exhausted steps the driver recorded as errors.
    pub fault: Option<FaultSummary>,
}

impl ScenarioResult {
    /// Aggregate creation throughput over the scenario, in files/s.
    pub fn creates_per_sec(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span > 0.0 {
            self.files as f64 / span
        } else {
            0.0
        }
    }
}

impl CheckpointStorm {
    /// Runs the checkpoint storm and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let chunk = 1024 * 1024;
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            for r in 0..self.rounds {
                s.push(Action::Barrier);
                s.push_measured(
                    "create",
                    Action::Create {
                        path: self.dir.join(&format!("ckpt.{r}.{n}")),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                let mut off = 0;
                while off < self.bytes_per_node {
                    let len = chunk.min(self.bytes_per_node - off);
                    s.push(Action::Write {
                        slot: 0,
                        offset: off,
                        len,
                    });
                    off += len;
                }
                s.push(Action::Close { slot: 0 });
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.rounds, fs)
    }
}

/// A bundle of loosely coupled small jobs, all configured to write
/// their outputs into one shared directory.
#[derive(Debug, Clone)]
pub struct JobBundle {
    /// Nodes running jobs.
    pub nodes: usize,
    /// Jobs per node (each its own process).
    pub jobs_per_node: usize,
    /// Output files per job (e.g. result + log).
    pub files_per_job: usize,
    /// Bytes per output file.
    pub bytes_per_file: u64,
    /// The shared output directory.
    pub dir: VPath,
}

impl Default for JobBundle {
    fn default() -> Self {
        JobBundle {
            nodes: 8,
            jobs_per_node: 16,
            files_per_job: 2,
            bytes_per_file: 64 * 1024,
            dir: vpath("/results"),
        }
    }
}

impl JobBundle {
    /// Runs the job bundle and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            for j in 0..self.jobs_per_node {
                // Each job is its own process — placement treats it as
                // a distinct stream.
                let mut s = ClientScript::new(NodeId(n as u32), Pid(j as u32 + 1));
                for f in 0..self.files_per_job {
                    s.push_measured(
                        "create",
                        Action::Create {
                            path: self.dir.join(&format!("out.{n}.{j}.{f}")),
                            mode: Mode::file_default(),
                            slot: 0,
                        },
                    );
                    s.push(Action::Write {
                        slot: 0,
                        offset: 0,
                        len: self.bytes_per_file,
                    });
                    s.push(Action::Close { slot: 0 });
                }
                scripts.push(s);
            }
        }
        let files = self.nodes * self.jobs_per_node * self.files_per_job;
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, files, fs)
    }
}

/// A metadata storm over a handful of hot shared directories: every
/// node creates files round-robin across the directories and re-stats
/// recent ones (the monitoring/polling traffic of §II), with no
/// payload I/O at all. This is the metadata-service stress the
/// shard-count scaling study sweeps — at the default intensity a
/// single metadata server saturates and serializes the storm, while
/// partitioned shards split the hot directories between them.
#[derive(Debug, Clone)]
pub struct SharedDirStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Hot shared directories (`<root>/d0` … `<root>/d{dirs-1}`).
    pub dirs: usize,
    /// Files each node creates (spread round-robin over the dirs).
    pub files_per_node: usize,
    /// `stat` calls issued after each create (polling pressure; this
    /// is what pushes the metadata service into its queueing regime).
    pub stats_per_create: usize,
    /// `readdir` calls on the hot directory after each create
    /// (directory-watching pressure). Zero by default — the historical
    /// storm shape — but with the client cache on this is the
    /// write-sharing worst case: every listing takes a dentry lease
    /// that the very next create by any other node must recall.
    pub readdirs_per_create: usize,
    /// How many *consecutive* files each node creates into the same
    /// directory before moving to the next one (a create train, the
    /// untar/compile pattern). `1` — the default, and the historical
    /// storm shape bit-for-bit — rotates directories every file; larger
    /// bursts give the RPC batching layer same-shard runs to coalesce.
    pub burst: usize,
    /// Defer each create's polling to the end of its burst: the node
    /// fires the whole create train back-to-back, *then* stats (and
    /// lists) everything it just created. `false` — the default, and
    /// the historical shape bit-for-bit — interleaves the polling
    /// after every create, which paces the train at synchronous-read
    /// speed and keeps batches timer-bound. With it on, trains fill
    /// real `max_batch_ops`-sized batches and the polling reads land
    /// while those multi-op lumps occupy the shard queues — the
    /// head-of-line collision the read-priority lane exists for.
    pub poll_after_burst: bool,
    /// Parent of the shared directories.
    pub root: VPath,
}

impl Default for SharedDirStorm {
    fn default() -> Self {
        SharedDirStorm {
            nodes: 32,
            dirs: 32,
            files_per_node: 16,
            stats_per_create: 8,
            readdirs_per_create: 0,
            burst: 1,
            poll_after_burst: false,
            root: vpath("/storm"),
        }
    }
}

impl SharedDirStorm {
    /// The mixed stat+create storm of the read-priority study: bursty
    /// create trains (which the batch layer coalesces into multi-op
    /// service lumps) with synchronous stats interleaved after every
    /// create. The ablation's round-robin row showed this shape gains
    /// nothing from batching alone — the stats queue behind the lumps
    /// — so it is the workload where `CofsConfig::read_priority` must
    /// decouple stat tail latency from `max_batch_ops`.
    pub fn mixed(nodes: usize, files_per_node: usize) -> Self {
        SharedDirStorm {
            nodes,
            dirs: 8,
            files_per_node,
            stats_per_create: 2,
            readdirs_per_create: 0,
            burst: 16,
            poll_after_burst: true,
            root: vpath("/storm"),
        }
    }

    /// Runs the storm and reports completion time plus per-shard load.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.root, Mode::dir_default())
            .expect("setup mkdir");
        for d in 0..self.dirs {
            fs.mkdir(
                &setup,
                &self.root.join(&format!("d{d}")),
                Mode::dir_default(),
            )
            .expect("setup mkdir");
        }
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            s.push(Action::Barrier);
            let mut pending: Vec<VPath> = Vec::new();
            for i in 0..self.files_per_node {
                // Interleave so every directory stays hot on every
                // node; a burst of b keeps b consecutive creates in one
                // directory before rotating (b = 1 is the historical
                // round-robin exactly).
                let d = (n + i / self.burst.max(1)) % self.dirs;
                let path = self.root.join(&format!("d{d}")).join(&format!("f.{n}.{i}"));
                s.push_measured(
                    "create",
                    Action::Create {
                        path: path.clone(),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                s.push(Action::Close { slot: 0 });
                let dir = self.root.join(&format!("d{d}"));
                if self.poll_after_burst {
                    // Polling waits for the burst boundary: the create
                    // train runs back-to-back first.
                    pending.push(path);
                    let burst_done =
                        (i + 1) % self.burst.max(1) == 0 || i + 1 == self.files_per_node;
                    if burst_done {
                        for p in pending.drain(..) {
                            for _ in 0..self.stats_per_create {
                                s.push_measured("stat", Action::Stat(p.clone()));
                            }
                            for _ in 0..self.readdirs_per_create {
                                s.push_measured("readdir", Action::Readdir(dir.clone()));
                            }
                        }
                    }
                } else {
                    for _ in 0..self.stats_per_create {
                        s.push_measured("stat", Action::Stat(path.clone()));
                    }
                    for _ in 0..self.readdirs_per_create {
                        s.push_measured("readdir", Action::Readdir(dir.clone()));
                    }
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.files_per_node, fs)
    }
}

/// The client cache's best case: N clients repeatedly `stat` and
/// open/close a mostly-read-only tree (think shared binaries, config
/// trees, or input datasets polled by every rank). Without a client
/// cache every round pays a full client↔shard round trip per file;
/// with leases only the first round misses, so simulated time drops to
/// the FUSE dispatch floor until a (rare) mutation or TTL expiry.
#[derive(Debug, Clone)]
pub struct HotStatStorm {
    /// Client nodes polling the tree.
    pub nodes: usize,
    /// Read-only directories (`<root>/d0` … ).
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// How many times each node re-walks the whole tree.
    pub rounds: usize,
    /// `open`+`close` cycles per stat'd file and round (0 = stat only).
    pub opens_per_round: usize,
    /// Root of the read-only tree.
    pub root: VPath,
}

impl Default for HotStatStorm {
    fn default() -> Self {
        HotStatStorm {
            nodes: 16,
            dirs: 4,
            files_per_dir: 16,
            rounds: 8,
            opens_per_round: 1,
            root: vpath("/hot"),
        }
    }
}

impl HotStatStorm {
    /// Total files in the tree.
    pub fn files(&self) -> usize {
        self.dirs * self.files_per_dir
    }

    /// Runs the storm: node 0 builds the tree (unmeasured), then every
    /// node stats (and open/closes) every file, `rounds` times.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.root, Mode::dir_default())
            .expect("setup mkdir");
        let mut now = SimTime::ZERO;
        for d in 0..self.dirs {
            let dir = self.root.join(&format!("d{d}"));
            now = fs
                .mkdir(&setup.at(now), &dir, Mode::dir_default())
                .expect("setup mkdir")
                .end;
            for f in 0..self.files_per_dir {
                let ctx = setup.at(now);
                let t = fs
                    .create(&ctx, &dir.join(&format!("f{f}")), Mode::file_default())
                    .expect("setup create");
                now = fs
                    .close(&setup.at(t.end), t.value)
                    .expect("setup close")
                    .end;
            }
        }
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            s.push(Action::Barrier);
            for _ in 0..self.rounds {
                for d in 0..self.dirs {
                    let dir = self.root.join(&format!("d{d}"));
                    for f in 0..self.files_per_dir {
                        let path = dir.join(&format!("f{f}"));
                        s.push_measured("stat", Action::Stat(path.clone()));
                        for _ in 0..self.opens_per_round {
                            s.push_measured(
                                "open_close",
                                Action::OpenClose(path.clone(), OpenFlags::RDONLY),
                            );
                        }
                    }
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.files(), fs)
    }
}

/// A multi-tenant metadata storm with one pathologically hot tenant:
/// every node creates files across the tenant directories, but a
/// configurable majority of them land in `/tenant0`. This is the
/// workload where both static shard policies lose — `SubtreePartition`
/// pins each whole tenant to one shard (so the hot tenant saturates
/// it), and `HashByParent` pins the hot *directory* to one shard just
/// the same — while an elastic policy can split the hot directory's
/// dentries across shards once its measured rate crosses the split
/// threshold.
#[derive(Debug, Clone)]
pub struct SkewedTenantStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Tenant directories (`/tenant0` … `/tenant{tenants-1}`), placed
    /// at the root so subtree partitioning assigns each its own shard.
    pub tenants: usize,
    /// Files each node creates.
    pub files_per_node: usize,
    /// `stat` calls issued after each create (polling pressure).
    pub stats_per_create: usize,
    /// Skew control: every `hot_stride`-th file goes to a rotating cold
    /// tenant, the rest to `/tenant0`. The default of 4 sends ~75 % of
    /// all creates to the hot tenant.
    pub hot_stride: usize,
}

impl Default for SkewedTenantStorm {
    fn default() -> Self {
        SkewedTenantStorm {
            nodes: 16,
            tenants: 8,
            files_per_node: 32,
            stats_per_create: 2,
            hot_stride: 4,
        }
    }
}

impl SkewedTenantStorm {
    /// Runs the skewed storm and reports completion time plus per-shard
    /// load (whose skew column is the point of this scenario).
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails, or if the configuration
    /// has fewer than two tenants or a zero `hot_stride`.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        assert!(self.tenants >= 2, "skew needs a hot and a cold tenant");
        assert!(self.hot_stride >= 1, "hot_stride must be at least 1");
        let setup = OpCtx::test(NodeId(0));
        for t in 0..self.tenants {
            fs.mkdir(&setup, &vpath(&format!("/tenant{t}")), Mode::dir_default())
                .expect("setup mkdir");
        }
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            s.push(Action::Barrier);
            for i in 0..self.files_per_node {
                // Every hot_stride-th file cools off on a rotating
                // non-hot tenant; everything else hammers tenant 0.
                let t = if i % self.hot_stride == self.hot_stride - 1 {
                    (n + i) % (self.tenants - 1) + 1
                } else {
                    0
                };
                let path = vpath(&format!("/tenant{t}/f.{n}.{i}"));
                s.push_measured(
                    "create",
                    Action::Create {
                        path: path.clone(),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                s.push(Action::Close { slot: 0 });
                for _ in 0..self.stats_per_create {
                    s.push_measured("stat", Action::Stat(path.clone()));
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.files_per_node, fs)
    }
}

/// A hotspot that moves: the storm runs in phases, each hammering one
/// directory out of a small pool, rotating to the next directory at
/// every phase boundary. While a phase runs, each node also re-stats a
/// few of its files from the *previous* phase — sparse polling that
/// keeps the cooled directory observed, which is exactly what lets a
/// lazy elastic policy notice the load has subsided and migrate the
/// split directory back toward single-shard affinity.
#[derive(Debug, Clone)]
pub struct ShiftingHotspotStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Directories in the rotation (`<root>/h0` … `<root>/h{dirs-1}`).
    pub dirs: usize,
    /// Phases; phase `p` hammers `<root>/h{p % dirs}`.
    pub phases: usize,
    /// Files each node creates per phase, all in the phase's hot dir.
    pub files_per_phase: usize,
    /// `stat` calls issued after each create.
    pub stats_per_create: usize,
    /// Files from the previous phase each node re-stats during the
    /// current one (cooldown polling; 0 disables the lookback).
    pub lookback_stats: usize,
    /// Parent of the rotating directories.
    pub root: VPath,
}

impl Default for ShiftingHotspotStorm {
    fn default() -> Self {
        ShiftingHotspotStorm {
            nodes: 8,
            dirs: 4,
            phases: 8,
            files_per_phase: 16,
            stats_per_create: 2,
            // Sparse enough that the cooled directory's observation
            // windows close at or under the default merge threshold
            // (all nodes' lookbacks land in the same windows, so the
            // per-window count scales with nodes × lookbacks ÷ phase
            // length) — this is what lets lazy migration actually fire
            // mid-storm instead of the hotspot dirs staying split
            // forever.
            lookback_stats: 2,
            root: vpath("/shift"),
        }
    }
}

impl ShiftingHotspotStorm {
    /// Total files the storm creates.
    pub fn files(&self) -> usize {
        self.nodes * self.phases * self.files_per_phase
    }

    /// Runs the shifting-hotspot storm. Barriers separate the phases,
    /// so every node agrees on which directory is hot.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails or `dirs` is zero.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        assert!(self.dirs >= 1, "need at least one directory");
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.root, Mode::dir_default())
            .expect("setup mkdir");
        for d in 0..self.dirs {
            fs.mkdir(
                &setup,
                &self.root.join(&format!("h{d}")),
                Mode::dir_default(),
            )
            .expect("setup mkdir");
        }
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            for p in 0..self.phases {
                s.push(Action::Barrier);
                let hot = self.root.join(&format!("h{}", p % self.dirs));
                // Sparse cooldown polling on last phase's directory,
                // spread *through* the phase (a background poller, not
                // a tail burst): each lookback stat is the only
                // traffic the cooled directory sees for a while, so an
                // elastic policy observes genuinely cold windows there
                // — that's what lets lazy migration give split levels
                // back while the new hotspot rages elsewhere.
                let lookbacks = if p > 0 {
                    self.lookback_stats.min(self.files_per_phase)
                } else {
                    0
                };
                let step = if lookbacks > 0 {
                    self.files_per_phase.div_ceil(lookbacks)
                } else {
                    usize::MAX
                };
                let cooled = self
                    .root
                    .join(&format!("h{}", (p + self.dirs - 1) % self.dirs));
                for i in 0..self.files_per_phase {
                    let path = hot.join(&format!("f.{n}.{p}.{i}"));
                    s.push_measured(
                        "create",
                        Action::Create {
                            path: path.clone(),
                            mode: Mode::file_default(),
                            slot: 0,
                        },
                    );
                    s.push(Action::Close { slot: 0 });
                    for _ in 0..self.stats_per_create {
                        s.push_measured("stat", Action::Stat(path.clone()));
                    }
                    // Stagger each node's polling positions: phases
                    // are barrier-synced, so un-staggered lookbacks
                    // from every node would land in the *same*
                    // observation windows and read as load, not cold.
                    if lookbacks > 0 {
                        let off = (n * step) / self.nodes.max(1);
                        if i >= off
                            && (i - off).is_multiple_of(step)
                            && (i - off) / step < lookbacks
                        {
                            let j = (i - off) / step;
                            let old = cooled.join(&format!("f.{n}.{}.{j}", p - 1));
                            s.push_measured("stat", Action::Stat(old));
                        }
                    }
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.files(), fs)
    }
}

/// The failover study: a shared-directory create/stat storm driven
/// *through* scripted shard crashes. Unlike every other storm it does
/// not require a clean run — clients ride out fault windows with
/// bounded retries, and the rare step that exhausts its budget fails
/// with `EIO` (asserted: no other errno may surface) and is counted in
/// [`FaultSummary::errors`] rather than wedging or panicking the run.
///
/// The fault script itself lives in the *target's* config
/// (`CofsConfig::with_fault_plan`): the storm re-arms it via
/// `phase_reset`, so scripted crash times are relative to the measured
/// phase. Run on a fault-free target the storm degenerates to a plain
/// create/stat storm with `fault: None` — the baseline row of the
/// failover sweep.
#[derive(Debug, Clone)]
pub struct FailoverStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Hot shared directories (`<root>/d0` … `<root>/d{dirs-1}`).
    pub dirs: usize,
    /// Files each node creates (spread round-robin over the dirs).
    pub files_per_node: usize,
    /// `stat` calls issued after each create (the polling traffic whose
    /// tail latency the fault window stretches).
    pub stats_per_create: usize,
    /// Parent of the shared directories.
    pub root: VPath,
}

impl Default for FailoverStorm {
    fn default() -> Self {
        FailoverStorm {
            nodes: 8,
            dirs: 8,
            files_per_node: 16,
            stats_per_create: 2,
            root: vpath("/failover"),
        }
    }
}

impl FailoverStorm {
    /// Runs the storm. `ScenarioResult::files` reports *attempted*
    /// creates; with an armed plan, `fault` carries the crash/retry
    /// accounting including the count of retry-exhausted steps.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails with anything other than
    /// the `EIO` that bounded retry exhaustion surfaces — crashes may
    /// slow a step or fail it honestly, never corrupt it.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.root, Mode::dir_default())
            .expect("setup mkdir");
        for d in 0..self.dirs {
            fs.mkdir(
                &setup,
                &self.root.join(&format!("d{d}")),
                Mode::dir_default(),
            )
            .expect("setup mkdir");
        }
        // Re-arms the fault plan: scripted crash times are measured
        // from here, not from the unmeasured setup above.
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            s.push(Action::Barrier);
            for i in 0..self.files_per_node {
                let d = (n + i) % self.dirs;
                let path = self.root.join(&format!("d{d}")).join(&format!("f.{n}.{i}"));
                s.push_measured(
                    "create",
                    Action::Create {
                        path: path.clone(),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                s.push(Action::Close { slot: 0 });
                for _ in 0..self.stats_per_create {
                    s.push_measured("stat", Action::Stat(path.clone()));
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        // Retry exhaustion surfaces `EIO`; a step that depended on an
        // exhausted create cascades deterministically (`EBADF` closing
        // its empty slot, `ENOENT` statting the never-created name).
        // Anything else is a real bug, not failover behavior.
        for e in &report.errors {
            assert!(
                e.error.is(Errno::EIO) || e.error.is(Errno::EBADF) || e.error.is(Errno::ENOENT),
                "unexpected failover error: {}",
                e.error
            );
        }
        let exhausted_steps = report
            .errors
            .iter()
            .filter(|e| e.error.is(Errno::EIO))
            .count() as u64;
        let clean = report.errors.is_empty();
        let mut r = summarize(report, self.nodes * self.files_per_node, fs);
        match r.fault.as_mut() {
            Some(f) => f.errors = exhausted_steps,
            None => assert!(clean, "step errors from a target with no fault plan"),
        }
        r
    }
}

/// The correlated-failure study: the [`FailoverStorm`] traffic shape
/// pointed at a target whose plan scripts *multiple* overlapping
/// faults — rack crashes, crash-loops, partitions. The survival
/// machinery under test (hot-standby promotion, post-recovery
/// admission control) lives entirely in the target's config; the storm
/// pins the traffic shape so swept rows stay comparable. What the
/// cascade rows expose that the single-crash failover rows cannot:
/// repeat crashes hammer the same re-established sessions (the
/// crash-loop convoy admission control paces), and simultaneous rack
/// crashes multiply the promotion/restart gap difference.
#[derive(Debug, Clone)]
pub struct CascadeStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Hot shared directories (`<root>/d0` … `<root>/d{dirs-1}`).
    pub dirs: usize,
    /// Files each node creates (spread round-robin over the dirs).
    pub files_per_node: usize,
    /// `stat` calls issued after each create.
    pub stats_per_create: usize,
    /// Parent of the shared directories.
    pub root: VPath,
}

impl Default for CascadeStorm {
    fn default() -> Self {
        CascadeStorm {
            nodes: 8,
            dirs: 8,
            files_per_node: 16,
            stats_per_create: 2,
            root: vpath("/cascade"),
        }
    }
}

impl CascadeStorm {
    /// Runs the storm; same contract as [`FailoverStorm::run`] — only
    /// `EIO` (retry exhaustion) and its deterministic `EBADF`/`ENOENT`
    /// cascade may surface, counted in [`FaultSummary::errors`].
    ///
    /// # Panics
    ///
    /// Panics on any other errno.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        FailoverStorm {
            nodes: self.nodes,
            dirs: self.dirs,
            files_per_node: self.files_per_node,
            stats_per_create: self.stats_per_create,
            root: self.root.clone(),
        }
        .run(fs)
    }
}

fn summarize<F: BenchTarget>(report: RunReport, files: usize, fs: &mut F) -> ScenarioResult {
    // Pipelined batching acknowledges mutations before their wire
    // completion; the phase is not over until the tail drains.
    let makespan = match fs.drain_outstanding() {
        Some(tail) => report.makespan.max(tail),
        None => report.makespan,
    };
    let stat_p50_p99_ms = report.label("stat").map(|s| {
        (
            s.quantile(0.5).as_millis_f64(),
            s.quantile(0.99).as_millis_f64(),
        )
    });
    let apply_tail_ms = (fs.apply_horizon(makespan) - makespan).as_millis_f64();
    ScenarioResult {
        makespan,
        mean_create_ms: report.mean_millis("create"),
        mean_stat_ms: report.mean_millis("stat"),
        stat_p50_p99_ms,
        files,
        per_shard: fs.shard_usage(),
        cache: fs.cache_stats(),
        batch: fs.batch_stats(),
        apply_tail_ms,
        fault: fs.fault_summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::fs::FileSystem;
    use vfs::memfs::MemFs;

    #[test]
    fn checkpoint_storm_creates_all_files() {
        let storm = CheckpointStorm {
            nodes: 4,
            bytes_per_node: 1024,
            rounds: 2,
            ..CheckpointStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 8);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &storm.dir).unwrap().value.len(), 8);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn shared_dir_storm_creates_all_files() {
        let storm = SharedDirStorm {
            nodes: 4,
            dirs: 4,
            files_per_node: 8,
            ..SharedDirStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 32);
        assert!(r.creates_per_sec() > 0.0);
        // Every hot directory got an even share.
        let ctx = OpCtx::test(NodeId(0));
        for d in 0..4 {
            let list = fs
                .readdir(&ctx, &storm.root.join(&format!("d{d}")))
                .unwrap()
                .value;
            assert_eq!(list.len(), 8, "d{d}");
        }
        // MemFs has no sharded MDS.
        assert!(r.per_shard.is_empty());
    }

    #[test]
    fn storm_reports_shard_usage_on_cofs() {
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fs::CofsFs;
        use simcore::time::SimDuration;

        let storm = SharedDirStorm {
            nodes: 2,
            dirs: 8,
            files_per_node: 8,
            ..SharedDirStorm::default()
        };
        let cfg = CofsConfig::default().with_shards(4, ShardPolicyKind::HashByParent);
        let mut fs = CofsFs::new(
            MemFs::new(),
            cfg,
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let r = storm.run(&mut fs);
        assert_eq!(r.per_shard.len(), 4);
        let total: u64 = r.per_shard.iter().map(|u| u.rpcs).sum();
        // create + stat per file, at least.
        assert!(total >= 2 * r.files as u64, "rpcs {total}");
        // More than one shard must have carried load (8 dirs, 4 shards).
        let loaded = r.per_shard.iter().filter(|u| u.rpcs > 0).count();
        assert!(
            loaded > 1,
            "storm load stuck on one shard: {:?}",
            r.per_shard
        );
    }

    #[test]
    fn hot_stat_storm_runs_on_memfs() {
        let storm = HotStatStorm {
            nodes: 2,
            dirs: 2,
            files_per_dir: 4,
            rounds: 2,
            opens_per_round: 1,
            ..HotStatStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 8);
        assert!(r.mean_stat_ms >= 0.0);
        assert!(r.makespan > SimTime::ZERO);
        assert!(r.cache.is_none(), "memfs has no client cache");
    }

    #[test]
    fn hot_stat_storm_cache_wins_and_storm_shows_invalidations() {
        use cofs::config::{CofsConfig, MdsNetwork};
        use cofs::fs::CofsFs;
        use simcore::time::SimDuration;

        let storm = HotStatStorm {
            nodes: 4,
            dirs: 2,
            files_per_dir: 8,
            rounds: 4,
            ..HotStatStorm::default()
        };
        let net = || MdsNetwork::uniform(SimDuration::from_micros(250));
        let mut plain = CofsFs::new(MemFs::new(), CofsConfig::default(), net(), 7);
        let cached_cfg = CofsConfig::default().with_client_cache(4096, SimDuration::from_secs(30));
        let mut cached = CofsFs::new(MemFs::new(), cached_cfg.clone(), net(), 7);
        let r_plain = storm.run(&mut plain);
        let r_cached = storm.run(&mut cached);
        assert!(
            r_cached.makespan < r_plain.makespan,
            "leases must beat per-op RTTs: {:?} vs {:?}",
            r_cached.makespan,
            r_plain.makespan
        );
        let stats = r_cached.cache.expect("cache enabled");
        assert!(stats.hit_rate() > 0.5, "read-only tree: {stats:?}");
        assert_eq!(stats.invalidations, 0, "nothing mutates the hot tree");

        // Write sharing (creates + listings in the same dirs) recalls
        // leases: the invalidation columns must show it.
        let storm = SharedDirStorm {
            nodes: 4,
            dirs: 2,
            files_per_node: 8,
            stats_per_create: 2,
            readdirs_per_create: 1,
            ..SharedDirStorm::default()
        };
        let mut cached = CofsFs::new(MemFs::new(), cached_cfg, net(), 7);
        let r = storm.run(&mut cached);
        let stats = r.cache.expect("cache enabled");
        assert!(stats.invalidations > 0, "{stats:?}");
        assert!(stats.recall_messages > 0, "{stats:?}");
        let recalls: u64 = r.per_shard.iter().map(|u| u.recalls).sum();
        assert!(recalls > 0, "{:?}", r.per_shard);
    }

    #[test]
    fn batched_storm_coalesces_and_beats_unbatched() {
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fs::CofsFs;
        use simcore::time::SimDuration;

        let storm = SharedDirStorm {
            nodes: 4,
            dirs: 2,
            files_per_node: 16,
            stats_per_create: 1,
            burst: 8,
            ..SharedDirStorm::default()
        };
        let net = || MdsNetwork::uniform(SimDuration::from_micros(250));
        let base = CofsConfig::default().with_shards(2, ShardPolicyKind::HashByParent);
        let mut plain = CofsFs::new(MemFs::new(), base.clone(), net(), 7);
        let mut batched = CofsFs::new(
            MemFs::new(),
            base.with_batching(8, SimDuration::from_millis(5), 4),
            net(),
            7,
        );
        let r_plain = storm.run(&mut plain);
        let r_batched = storm.run(&mut batched);
        assert!(r_plain.batch.is_none(), "batching off reports no stats");
        let stats = r_batched.batch.expect("batching on");
        assert!(
            stats.mean_batch_ops() > 1.5,
            "bursts must coalesce: {stats:?}"
        );
        assert!(
            r_batched.makespan < r_plain.makespan,
            "amortized RTTs and group commits must win: {:?} vs {:?}",
            r_batched.makespan,
            r_plain.makespan
        );
        // The wire batches appear in the per-shard load.
        let batches: u64 = r_batched.per_shard.iter().map(|u| u.batches).sum();
        assert_eq!(batches, stats.batches_issued);
        assert!(r_plain.per_shard.iter().all(|u| u.batches == 0));
    }

    #[test]
    fn skewed_tenant_storm_is_skewed() {
        let storm = SkewedTenantStorm {
            nodes: 4,
            tenants: 4,
            files_per_node: 8,
            ..SkewedTenantStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 32);
        let ctx = OpCtx::test(NodeId(0));
        let hot = fs.readdir(&ctx, &vpath("/tenant0")).unwrap().value.len();
        // stride 4: i = 3 and 7 cool off, the other 6 of 8 stay hot.
        assert_eq!(hot, 4 * 6, "~75 % of creates must hit the hot tenant");
        let cold: usize = (1..4)
            .map(|t| {
                fs.readdir(&ctx, &vpath(&format!("/tenant{t}")))
                    .unwrap()
                    .value
                    .len()
            })
            .sum();
        assert_eq!(hot + cold, 32);
    }

    #[test]
    fn skewed_tenant_storm_skews_shard_load_under_static_policies() {
        use crate::report::shard_skew;
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fs::CofsFs;
        use simcore::time::SimDuration;

        let storm = SkewedTenantStorm {
            nodes: 4,
            tenants: 4,
            files_per_node: 16,
            ..SkewedTenantStorm::default()
        };
        let net = || MdsNetwork::uniform(SimDuration::from_micros(250));
        for kind in [ShardPolicyKind::HashByParent, ShardPolicyKind::Subtree] {
            let cfg = CofsConfig::default().with_shards(4, kind);
            let mut fs = CofsFs::new(MemFs::new(), cfg, net(), 7);
            let r = storm.run(&mut fs);
            let skew = shard_skew(&r.per_shard);
            assert!(
                skew > 1.5,
                "{kind:?} must concentrate the hot tenant on one shard: skew {skew}"
            );
        }
    }

    #[test]
    fn shifting_hotspot_storm_creates_all_files() {
        let storm = ShiftingHotspotStorm {
            nodes: 2,
            dirs: 2,
            phases: 4,
            files_per_phase: 4,
            ..ShiftingHotspotStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 32);
        let ctx = OpCtx::test(NodeId(0));
        // 4 phases over 2 dirs: each dir hosts 2 phases × 2 nodes × 4.
        for d in 0..2 {
            let list = fs
                .readdir(&ctx, &storm.root.join(&format!("h{d}")))
                .unwrap()
                .value;
            assert_eq!(list.len(), 16, "h{d}");
        }
        assert!(r.mean_stat_ms >= 0.0);
    }

    #[test]
    fn failover_storm_without_faults_is_a_plain_storm() {
        let storm = FailoverStorm {
            nodes: 2,
            dirs: 2,
            files_per_node: 4,
            stats_per_create: 1,
            ..FailoverStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 8);
        assert!(r.fault.is_none(), "memfs has no fault plan");
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn failover_storm_completes_through_a_mid_storm_crash() {
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fault::FaultPlan;
        use cofs::fs::CofsFs;
        use cofs::mds_cluster::ShardId;
        use simcore::time::SimDuration;

        let storm = FailoverStorm {
            nodes: 4,
            dirs: 8,
            files_per_node: 8,
            stats_per_create: 2,
            ..FailoverStorm::default()
        };
        let plan = FaultPlan::default().crash(
            ShardId(1),
            SimTime::from_millis(5),
            SimDuration::from_millis(10),
        );
        let cfg = CofsConfig::default()
            .with_shards(4, ShardPolicyKind::HashByParent)
            .with_fault_plan(plan);
        let mut fs = CofsFs::new(
            MemFs::new(),
            cfg,
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let r = storm.run(&mut fs);
        let f = r.fault.expect("plan armed");
        assert_eq!(f.crashes, 1);
        assert!(f.nacks > 0, "the storm must have hit the window: {f:?}");
        assert!(f.retries > 0);
        assert_eq!(f.lost_acked_ops, 0, "acked work must survive recovery");
        assert_eq!(f.errors, 0, "default retry budget rides out 10ms");
        assert!(f.gap_ms >= 10.0, "gap covers restart + recovery: {f:?}");
        // The storm completed *through* the crash, not before it.
        assert!(r.makespan >= SimTime::from_millis(15), "{:?}", r.makespan);
        // Every attempted file exists: nothing was half-created.
        use vfs::fs::FileSystem;
        let ctx = OpCtx::test(NodeId(0));
        let mut listed = 0;
        for d in 0..storm.dirs {
            listed += fs
                .readdir(&ctx, &storm.root.join(&format!("d{d}")))
                .unwrap()
                .value
                .len();
        }
        assert_eq!(listed, r.files);
    }

    #[test]
    fn cascade_storm_survives_a_crash_loop_with_promotion_and_admission() {
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fault::FaultPlan;
        use cofs::fs::CofsFs;
        use cofs::mds_cluster::ShardId;
        use simcore::time::SimDuration;

        let storm = CascadeStorm {
            nodes: 4,
            dirs: 8,
            files_per_node: 8,
            stats_per_create: 2,
            ..CascadeStorm::default()
        };
        // A three-flap crash loop on one shard plus a simultaneous
        // partner crash — the correlated shape the cascade axis sweeps.
        // The tight 3ms period keeps every flap inside the promoted
        // storm's (much shorter) makespan so all four crashes fire.
        let plan = FaultPlan::default()
            .crash_loop(
                ShardId(1),
                SimTime::from_millis(2),
                SimDuration::from_millis(3),
                SimDuration::from_millis(10),
                3,
            )
            .crash(
                ShardId(2),
                SimTime::from_millis(2),
                SimDuration::from_millis(10),
            );
        let cfg = CofsConfig::default()
            .with_shards(4, ShardPolicyKind::HashByParent)
            .with_batching(16, SimDuration::from_millis(5), 4)
            .with_write_behind()
            .with_standby()
            .with_admission()
            .with_fault_plan(plan);
        let mut fs = CofsFs::new(
            MemFs::new(),
            cfg,
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let r = storm.run(&mut fs);
        let f = r.fault.expect("plan armed");
        assert_eq!(f.crashes, 4, "three flaps plus the rack partner");
        assert_eq!(f.promotions, 4, "standby absorbs every crash");
        assert_eq!(f.lost_acked_ops, 0, "acked work survives every flap");
        assert_eq!(f.errors, 0, "promotion gaps are short enough to ride out");
        // Promotion keeps each outage near the promotion cost, far
        // below the 4 × 10ms scripted floor the cold path waits out.
        assert!(f.gap_ms < 40.0, "promotion beats the scripted floor: {f:?}");
        use vfs::fs::FileSystem;
        let ctx = OpCtx::test(NodeId(0));
        let mut listed = 0;
        for d in 0..storm.dirs {
            listed += fs
                .readdir(&ctx, &storm.root.join(&format!("d{d}")))
                .unwrap()
                .value
                .len();
        }
        assert_eq!(listed, r.files, "nothing half-created across the cascade");
    }

    #[test]
    fn job_bundle_creates_all_outputs() {
        let bundle = JobBundle {
            nodes: 2,
            jobs_per_node: 3,
            files_per_job: 2,
            bytes_per_file: 128,
            ..JobBundle::default()
        };
        let mut fs = MemFs::new();
        let r = bundle.run(&mut fs);
        assert_eq!(r.files, 12);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &bundle.dir).unwrap().value.len(), 12);
        assert!(r.mean_create_ms >= 0.0);
    }
}
