//! The motivating application scenarios from the paper's introduction.
//!
//! §II: "Large parallel applications usually create per-node auxiliary
//! files and/or generate checkpoints by having each node dump its
//! relevant data into a different file; not unlikely, applications
//! place these files in a common directory. On the other hand, smaller
//! applications are typically launched in large bunches, and users
//! configure them to write the different output files also in a shared
//! directory."

use crate::target::BenchTarget;
use netsim::ids::{NodeId, Pid};
use simcore::time::SimTime;
use vfs::driver::{run, Action, ClientScript, RunReport};
use vfs::fs::OpCtx;
use vfs::path::{vpath, VPath};
use vfs::types::Mode;

/// A parallel application writing a checkpoint: every node dumps its
/// state into its own file in a common directory.
#[derive(Debug, Clone)]
pub struct CheckpointStorm {
    /// Nodes dumping state.
    pub nodes: usize,
    /// Bytes each node writes per checkpoint.
    pub bytes_per_node: u64,
    /// Checkpoint rounds.
    pub rounds: usize,
    /// The common directory.
    pub dir: VPath,
}

impl Default for CheckpointStorm {
    fn default() -> Self {
        CheckpointStorm {
            nodes: 8,
            bytes_per_node: 4 * 1024 * 1024,
            rounds: 3,
            dir: vpath("/checkpoints"),
        }
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Virtual wall time to complete the whole scenario.
    pub makespan: SimTime,
    /// Mean time per file creation, in ms.
    pub mean_create_ms: f64,
    /// Total files created.
    pub files: usize,
}

impl CheckpointStorm {
    /// Runs the checkpoint storm and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let chunk = 1024 * 1024;
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            for r in 0..self.rounds {
                s.push(Action::Barrier);
                s.push_measured(
                    "create",
                    Action::Create {
                        path: self.dir.join(&format!("ckpt.{r}.{n}")),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                let mut off = 0;
                while off < self.bytes_per_node {
                    let len = chunk.min(self.bytes_per_node - off);
                    s.push(Action::Write {
                        slot: 0,
                        offset: off,
                        len,
                    });
                    off += len;
                }
                s.push(Action::Close { slot: 0 });
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.rounds)
    }
}

/// A bundle of loosely coupled small jobs, all configured to write
/// their outputs into one shared directory.
#[derive(Debug, Clone)]
pub struct JobBundle {
    /// Nodes running jobs.
    pub nodes: usize,
    /// Jobs per node (each its own process).
    pub jobs_per_node: usize,
    /// Output files per job (e.g. result + log).
    pub files_per_job: usize,
    /// Bytes per output file.
    pub bytes_per_file: u64,
    /// The shared output directory.
    pub dir: VPath,
}

impl Default for JobBundle {
    fn default() -> Self {
        JobBundle {
            nodes: 8,
            jobs_per_node: 16,
            files_per_job: 2,
            bytes_per_file: 64 * 1024,
            dir: vpath("/results"),
        }
    }
}

impl JobBundle {
    /// Runs the job bundle and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            for j in 0..self.jobs_per_node {
                // Each job is its own process — placement treats it as
                // a distinct stream.
                let mut s = ClientScript::new(NodeId(n as u32), Pid(j as u32 + 1));
                for f in 0..self.files_per_job {
                    s.push_measured(
                        "create",
                        Action::Create {
                            path: self.dir.join(&format!("out.{n}.{j}.{f}")),
                            mode: Mode::file_default(),
                            slot: 0,
                        },
                    );
                    s.push(Action::Write {
                        slot: 0,
                        offset: 0,
                        len: self.bytes_per_file,
                    });
                    s.push(Action::Close { slot: 0 });
                }
                scripts.push(s);
            }
        }
        let files = self.nodes * self.jobs_per_node * self.files_per_job;
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, files)
    }
}

fn summarize(report: RunReport, files: usize) -> ScenarioResult {
    ScenarioResult {
        makespan: report.makespan,
        mean_create_ms: report.mean_millis("create"),
        files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::fs::FileSystem;
    use vfs::memfs::MemFs;

    #[test]
    fn checkpoint_storm_creates_all_files() {
        let storm = CheckpointStorm {
            nodes: 4,
            bytes_per_node: 1024,
            rounds: 2,
            ..CheckpointStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 8);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &storm.dir).unwrap().value.len(), 8);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn job_bundle_creates_all_outputs() {
        let bundle = JobBundle {
            nodes: 2,
            jobs_per_node: 3,
            files_per_job: 2,
            bytes_per_file: 128,
            ..JobBundle::default()
        };
        let mut fs = MemFs::new();
        let r = bundle.run(&mut fs);
        assert_eq!(r.files, 12);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &bundle.dir).unwrap().value.len(), 12);
        assert!(r.mean_create_ms >= 0.0);
    }
}
