//! The motivating application scenarios from the paper's introduction.
//!
//! §II: "Large parallel applications usually create per-node auxiliary
//! files and/or generate checkpoints by having each node dump its
//! relevant data into a different file; not unlikely, applications
//! place these files in a common directory. On the other hand, smaller
//! applications are typically launched in large bunches, and users
//! configure them to write the different output files also in a shared
//! directory."

use crate::target::BenchTarget;
use cofs::mds_cluster::ShardUsage;
use netsim::ids::{NodeId, Pid};
use simcore::time::SimTime;
use vfs::driver::{run, Action, ClientScript, RunReport};
use vfs::fs::OpCtx;
use vfs::path::{vpath, VPath};
use vfs::types::Mode;

/// A parallel application writing a checkpoint: every node dumps its
/// state into its own file in a common directory.
#[derive(Debug, Clone)]
pub struct CheckpointStorm {
    /// Nodes dumping state.
    pub nodes: usize,
    /// Bytes each node writes per checkpoint.
    pub bytes_per_node: u64,
    /// Checkpoint rounds.
    pub rounds: usize,
    /// The common directory.
    pub dir: VPath,
}

impl Default for CheckpointStorm {
    fn default() -> Self {
        CheckpointStorm {
            nodes: 8,
            bytes_per_node: 4 * 1024 * 1024,
            rounds: 3,
            dir: vpath("/checkpoints"),
        }
    }
}

/// Outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Virtual wall time to complete the whole scenario.
    pub makespan: SimTime,
    /// Mean time per file creation, in ms.
    pub mean_create_ms: f64,
    /// Total files created.
    pub files: usize,
    /// Per-shard metadata-service load during the measured phase
    /// (empty when the target has no sharded MDS).
    pub per_shard: Vec<ShardUsage>,
}

impl ScenarioResult {
    /// Aggregate creation throughput over the scenario, in files/s.
    pub fn creates_per_sec(&self) -> f64 {
        let span = self.makespan.as_secs_f64();
        if span > 0.0 {
            self.files as f64 / span
        } else {
            0.0
        }
    }
}

impl CheckpointStorm {
    /// Runs the checkpoint storm and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let chunk = 1024 * 1024;
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            for r in 0..self.rounds {
                s.push(Action::Barrier);
                s.push_measured(
                    "create",
                    Action::Create {
                        path: self.dir.join(&format!("ckpt.{r}.{n}")),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                let mut off = 0;
                while off < self.bytes_per_node {
                    let len = chunk.min(self.bytes_per_node - off);
                    s.push(Action::Write {
                        slot: 0,
                        offset: off,
                        len,
                    });
                    off += len;
                }
                s.push(Action::Close { slot: 0 });
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.rounds, fs.shard_usage())
    }
}

/// A bundle of loosely coupled small jobs, all configured to write
/// their outputs into one shared directory.
#[derive(Debug, Clone)]
pub struct JobBundle {
    /// Nodes running jobs.
    pub nodes: usize,
    /// Jobs per node (each its own process).
    pub jobs_per_node: usize,
    /// Output files per job (e.g. result + log).
    pub files_per_job: usize,
    /// Bytes per output file.
    pub bytes_per_file: u64,
    /// The shared output directory.
    pub dir: VPath,
}

impl Default for JobBundle {
    fn default() -> Self {
        JobBundle {
            nodes: 8,
            jobs_per_node: 16,
            files_per_job: 2,
            bytes_per_file: 64 * 1024,
            dir: vpath("/results"),
        }
    }
}

impl JobBundle {
    /// Runs the job bundle and reports completion time.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.dir, Mode::dir_default())
            .expect("setup mkdir");
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            for j in 0..self.jobs_per_node {
                // Each job is its own process — placement treats it as
                // a distinct stream.
                let mut s = ClientScript::new(NodeId(n as u32), Pid(j as u32 + 1));
                for f in 0..self.files_per_job {
                    s.push_measured(
                        "create",
                        Action::Create {
                            path: self.dir.join(&format!("out.{n}.{j}.{f}")),
                            mode: Mode::file_default(),
                            slot: 0,
                        },
                    );
                    s.push(Action::Write {
                        slot: 0,
                        offset: 0,
                        len: self.bytes_per_file,
                    });
                    s.push(Action::Close { slot: 0 });
                }
                scripts.push(s);
            }
        }
        let files = self.nodes * self.jobs_per_node * self.files_per_job;
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, files, fs.shard_usage())
    }
}

/// A metadata storm over a handful of hot shared directories: every
/// node creates files round-robin across the directories and re-stats
/// recent ones (the monitoring/polling traffic of §II), with no
/// payload I/O at all. This is the metadata-service stress the
/// shard-count scaling study sweeps — at the default intensity a
/// single metadata server saturates and serializes the storm, while
/// partitioned shards split the hot directories between them.
#[derive(Debug, Clone)]
pub struct SharedDirStorm {
    /// Nodes issuing creates.
    pub nodes: usize,
    /// Hot shared directories (`<root>/d0` … `<root>/d{dirs-1}`).
    pub dirs: usize,
    /// Files each node creates (spread round-robin over the dirs).
    pub files_per_node: usize,
    /// `stat` calls issued after each create (polling pressure; this
    /// is what pushes the metadata service into its queueing regime).
    pub stats_per_create: usize,
    /// Parent of the shared directories.
    pub root: VPath,
}

impl Default for SharedDirStorm {
    fn default() -> Self {
        SharedDirStorm {
            nodes: 32,
            dirs: 32,
            files_per_node: 16,
            stats_per_create: 8,
            root: vpath("/storm"),
        }
    }
}

impl SharedDirStorm {
    /// Runs the storm and reports completion time plus per-shard load.
    ///
    /// # Panics
    ///
    /// Panics if any scripted operation fails.
    pub fn run<F: BenchTarget>(&self, fs: &mut F) -> ScenarioResult {
        let setup = OpCtx::test(NodeId(0));
        fs.mkdir(&setup, &self.root, Mode::dir_default())
            .expect("setup mkdir");
        for d in 0..self.dirs {
            fs.mkdir(
                &setup,
                &self.root.join(&format!("d{d}")),
                Mode::dir_default(),
            )
            .expect("setup mkdir");
        }
        fs.phase_reset();
        let mut scripts = Vec::new();
        for n in 0..self.nodes {
            let mut s = ClientScript::new(NodeId(n as u32), Pid(1));
            s.push(Action::Barrier);
            for i in 0..self.files_per_node {
                // Interleave so every directory stays hot on every node.
                let d = (n + i) % self.dirs;
                let path = self.root.join(&format!("d{d}")).join(&format!("f.{n}.{i}"));
                s.push_measured(
                    "create",
                    Action::Create {
                        path: path.clone(),
                        mode: Mode::file_default(),
                        slot: 0,
                    },
                );
                s.push(Action::Close { slot: 0 });
                for _ in 0..self.stats_per_create {
                    s.push_measured("stat", Action::Stat(path.clone()));
                }
            }
            scripts.push(s);
        }
        let report = run(fs, scripts);
        report.expect_clean();
        summarize(report, self.nodes * self.files_per_node, fs.shard_usage())
    }
}

fn summarize(report: RunReport, files: usize, per_shard: Vec<ShardUsage>) -> ScenarioResult {
    ScenarioResult {
        makespan: report.makespan,
        mean_create_ms: report.mean_millis("create"),
        files,
        per_shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::fs::FileSystem;
    use vfs::memfs::MemFs;

    #[test]
    fn checkpoint_storm_creates_all_files() {
        let storm = CheckpointStorm {
            nodes: 4,
            bytes_per_node: 1024,
            rounds: 2,
            ..CheckpointStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 8);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &storm.dir).unwrap().value.len(), 8);
        assert!(r.makespan > SimTime::ZERO);
    }

    #[test]
    fn shared_dir_storm_creates_all_files() {
        let storm = SharedDirStorm {
            nodes: 4,
            dirs: 4,
            files_per_node: 8,
            ..SharedDirStorm::default()
        };
        let mut fs = MemFs::new();
        let r = storm.run(&mut fs);
        assert_eq!(r.files, 32);
        assert!(r.creates_per_sec() > 0.0);
        // Every hot directory got an even share.
        let ctx = OpCtx::test(NodeId(0));
        for d in 0..4 {
            let list = fs
                .readdir(&ctx, &storm.root.join(&format!("d{d}")))
                .unwrap()
                .value;
            assert_eq!(list.len(), 8, "d{d}");
        }
        // MemFs has no sharded MDS.
        assert!(r.per_shard.is_empty());
    }

    #[test]
    fn storm_reports_shard_usage_on_cofs() {
        use cofs::config::{CofsConfig, MdsNetwork, ShardPolicyKind};
        use cofs::fs::CofsFs;
        use simcore::time::SimDuration;

        let storm = SharedDirStorm {
            nodes: 2,
            dirs: 8,
            files_per_node: 8,
            ..SharedDirStorm::default()
        };
        let cfg = CofsConfig::default().with_shards(4, ShardPolicyKind::HashByParent);
        let mut fs = CofsFs::new(
            MemFs::new(),
            cfg,
            MdsNetwork::uniform(SimDuration::from_micros(250)),
            7,
        );
        let r = storm.run(&mut fs);
        assert_eq!(r.per_shard.len(), 4);
        let total: u64 = r.per_shard.iter().map(|u| u.rpcs).sum();
        // create + stat per file, at least.
        assert!(total >= 2 * r.files as u64, "rpcs {total}");
        // More than one shard must have carried load (8 dirs, 4 shards).
        let loaded = r.per_shard.iter().filter(|u| u.rpcs > 0).count();
        assert!(
            loaded > 1,
            "storm load stuck on one shard: {:?}",
            r.per_shard
        );
    }

    #[test]
    fn job_bundle_creates_all_outputs() {
        let bundle = JobBundle {
            nodes: 2,
            jobs_per_node: 3,
            files_per_job: 2,
            bytes_per_file: 128,
            ..JobBundle::default()
        };
        let mut fs = MemFs::new();
        let r = bundle.run(&mut fs);
        assert_eq!(r.files, 12);
        let ctx = OpCtx::test(NodeId(0));
        assert_eq!(fs.readdir(&ctx, &bundle.dir).unwrap().value.len(), 12);
        assert!(r.mean_create_ms >= 0.0);
    }
}
