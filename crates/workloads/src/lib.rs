//! # workloads — the paper's benchmarks, reimplemented
//!
//! - [`metarates`] — parallel metadata rates (create / stat / utime /
//!   open-close on a shared directory), the main benchmark of the
//!   paper's evaluation (Figs 1, 2, 4, 5, 6);
//! - [`ior`] — IOR-style aggregate data rates (sequential/random ×
//!   read/write × shared/separate files), for Table I;
//! - [`scenarios`] — the motivating application patterns from the
//!   introduction (checkpoint storms, job bundles);
//! - [`report`] — aligned text tables and CSV output;
//! - [`target`] — the [`target::BenchTarget`] trait hooking phase
//!   resets into each filesystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ior;
pub mod metarates;
pub mod report;
pub mod scenarios;
pub mod target;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::ior::{run_ior_op, Access, FileMode, IoOp, IorConfig, IorResult};
    pub use crate::metarates::{
        run_all, run_phase, run_phase_fresh, MetaOp, MetaratesConfig, PhaseResult,
    };
    pub use crate::report::{cache_cells, mibs, ms, Table, CACHE_COLUMNS};
    pub use crate::scenarios::{
        CheckpointStorm, HotStatStorm, JobBundle, ScenarioResult, SharedDirStorm,
    };
    pub use crate::target::BenchTarget;
}
