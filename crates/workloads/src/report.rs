//! Plain-text tables and series for benchmark output.
//!
//! The bench binaries print the same rows/series the paper's figures
//! plot; these helpers keep the formatting consistent and also emit
//! CSV for post-processing.

use cofs::batch::BatchStats;
use cofs::client_cache::CacheStats;
use cofs::fault::FaultSummary;
use cofs::mds_cluster::ShardUsage;
use simcore::time::SimTime;
use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use workloads::report::Table;
///
/// let mut t = Table::new(vec!["files/node", "gpfs (ms)", "cofs (ms)"]);
/// t.row(vec!["32".into(), "18.2".into(), "2.1".into()]);
/// let text = t.render();
/// assert!(text.contains("files/node"));
/// assert!(text.contains("18.2"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers (for machine-readable exports).
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (for machine-readable exports).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a milliseconds value the way the paper's figures read.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a MiB/s value.
pub fn mibs(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a 0–1 fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Renders per-shard metadata-service load as a table, so skewed
/// namespace partitions are visible at a glance in scenario reports.
/// `makespan` is the phase wall time the utilization column is
/// computed against.
///
/// # Examples
///
/// ```
/// use cofs::mds_cluster::ShardUsage;
/// use simcore::time::{SimDuration, SimTime};
/// use workloads::report::shard_utilization_table;
///
/// let usage = vec![ShardUsage {
///     shard: 0,
///     rpcs: 10,
///     busy: SimDuration::from_millis(5),
///     mean_wait: SimDuration::from_micros(40),
///     two_phase: 1,
///     recalls: 0,
///     batches: 0,
///     reads_charged: 30,
///     reads_memoized: 0,
///     read_bypasses: 0,
///     journal_appends: 0,
///     rows_coalesced: 0,
///     apply_lag: SimDuration::ZERO,
///     splits: 0,
///     merges: 0,
///     migrations: 0,
/// }];
/// let t = shard_utilization_table(&usage, SimTime::from_millis(10));
/// assert!(t.render().contains("50.0%"));
/// ```
pub fn shard_utilization_table(usage: &[ShardUsage], makespan: SimTime) -> Table {
    let mut t = Table::new(vec![
        "shard",
        "rpcs",
        "batches",
        "busy (ms)",
        "util",
        "skew",
        "mean wait (ms)",
        "2pc",
        "recalls",
        "reads",
        "memoized",
        "bypasses",
        "journal",
        "coalesced",
        "apply lag (ms)",
        "splits",
        "merges",
        "migr",
    ]);
    let span = makespan.as_secs_f64();
    let mean_busy = if usage.is_empty() {
        0.0
    } else {
        usage.iter().map(|u| u.busy.as_secs_f64()).sum::<f64>() / usage.len() as f64
    };
    for u in usage {
        let util = if span > 0.0 {
            u.busy.as_secs_f64() / span
        } else {
            0.0
        };
        let skew = if mean_busy > 0.0 {
            u.busy.as_secs_f64() / mean_busy
        } else {
            0.0
        };
        t.row(vec![
            u.shard.to_string(),
            u.rpcs.to_string(),
            u.batches.to_string(),
            ms(u.busy.as_millis_f64()),
            pct(util),
            format!("{skew:.2}"),
            ms(u.mean_wait.as_millis_f64()),
            u.two_phase.to_string(),
            u.recalls.to_string(),
            u.reads_charged.to_string(),
            u.reads_memoized.to_string(),
            u.read_bypasses.to_string(),
            u.journal_appends.to_string(),
            u.rows_coalesced.to_string(),
            ms(u.apply_lag.as_millis_f64()),
            u.splits.to_string(),
            u.merges.to_string(),
            u.migrations.to_string(),
        ]);
    }
    t
}

/// The skew of a per-shard load sample: max over mean CPU busy time
/// (1.0 = perfectly balanced, `shards` = everything on one shard,
/// 0.0 = no load at all). The scenario-level number the elastic
/// policy's rebalancing is judged by — the per-shard tables carry the
/// same ratio per row.
///
/// # Examples
///
/// ```
/// use cofs::mds_cluster::ShardUsage;
/// use simcore::time::SimDuration;
/// use workloads::report::shard_skew;
///
/// let mk = |shard, millis| ShardUsage {
///     shard,
///     rpcs: 0,
///     busy: SimDuration::from_millis(millis),
///     mean_wait: SimDuration::ZERO,
///     two_phase: 0,
///     recalls: 0,
///     batches: 0,
///     reads_charged: 0,
///     reads_memoized: 0,
///     read_bypasses: 0,
///     journal_appends: 0,
///     rows_coalesced: 0,
///     apply_lag: SimDuration::ZERO,
///     splits: 0,
///     merges: 0,
///     migrations: 0,
/// };
/// // All load on one of two shards: skew = max/mean = 2.0.
/// assert_eq!(shard_skew(&[mk(0, 8), mk(1, 0)]), 2.0);
/// assert_eq!(shard_skew(&[mk(0, 4), mk(1, 4)]), 1.0);
/// assert_eq!(shard_skew(&[]), 0.0);
/// ```
pub fn shard_skew(usage: &[ShardUsage]) -> f64 {
    if usage.is_empty() {
        return 0.0;
    }
    let mean = usage.iter().map(|u| u.busy.as_secs_f64()).sum::<f64>() / usage.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let max = usage
        .iter()
        .map(|u| u.busy.as_secs_f64())
        .fold(0.0, f64::max);
    max / mean
}

/// The read-latency columns scenario tables append when a run measures
/// synchronous reads: `stat` p50 and p99 in milliseconds. Makespan
/// alone hides head-of-line blocking — a storm can finish at the same
/// time while its interactive stats wait out whole batch lumps — so
/// the priority-lane studies report these tail columns per storm.
pub const READ_LAT_COLUMNS: [&str; 2] = ["stat p50 (ms)", "stat p99 (ms)"];

/// Formats a scenario's stat-latency percentiles into the
/// [`READ_LAT_COLUMNS`] cells (dashes when the storm measured no
/// stats, so rows with and without read traffic align).
///
/// # Examples
///
/// ```
/// use workloads::report::read_latency_cells;
///
/// assert_eq!(read_latency_cells(Some((0.5, 2.25))), vec!["0.50", "2.25"]);
/// assert_eq!(read_latency_cells(None), vec!["-", "-"]);
/// ```
pub fn read_latency_cells(p50_p99_ms: Option<(f64, f64)>) -> Vec<String> {
    match p50_p99_ms {
        Some((p50, p99)) => vec![ms(p50), ms(p99)],
        None => vec!["-".into(); READ_LAT_COLUMNS.len()],
    }
}

/// The client-cache columns scenario tables append when a run reports
/// cache statistics: hits, misses, hit rate, invalidations, recall
/// messages. A run without a cache (or with it disabled) renders as
/// dashes so cache-on and cache-off rows align in one table.
pub const CACHE_COLUMNS: [&str; 5] = ["hits", "misses", "hit rate", "invald", "recalls"];

/// Formats [`CacheStats`] into the [`CACHE_COLUMNS`] cells.
///
/// # Examples
///
/// ```
/// use cofs::client_cache::CacheStats;
/// use workloads::report::cache_cells;
///
/// let cells = cache_cells(Some(&CacheStats { hits: 3, misses: 1, ..Default::default() }));
/// assert_eq!(cells[2], "75.0%");
/// assert_eq!(cache_cells(None)[0], "-");
/// ```
pub fn cache_cells(stats: Option<&CacheStats>) -> Vec<String> {
    match stats {
        Some(s) => vec![
            s.hits.to_string(),
            s.misses.to_string(),
            pct(s.hit_rate()),
            s.invalidations.to_string(),
            s.recall_messages.to_string(),
        ],
        None => vec!["-".into(); CACHE_COLUMNS.len()],
    }
}

/// The batching columns scenario tables append when a run reports
/// batch statistics: wire batches issued, mean operations per batch,
/// and how batches closed (full vs. timer/drain). A run without
/// batching renders as dashes so batching-on and -off rows align.
pub const BATCH_COLUMNS: [&str; 4] = ["batches", "ops/batch", "full", "timed"];

/// Formats [`BatchStats`] into the [`BATCH_COLUMNS`] cells.
///
/// # Examples
///
/// ```
/// use cofs::batch::BatchStats;
/// use workloads::report::batch_cells;
///
/// let s = BatchStats { ops_enqueued: 8, batches_issued: 2, flush_full: 2, ..Default::default() };
/// assert_eq!(batch_cells(Some(&s))[1], "4.0");
/// assert_eq!(batch_cells(None)[0], "-");
/// ```
pub fn batch_cells(stats: Option<&BatchStats>) -> Vec<String> {
    match stats {
        Some(s) => vec![
            s.batches_issued.to_string(),
            format!("{:.1}", s.mean_batch_ops()),
            s.flush_full.to_string(),
            (s.flush_timer + s.flush_drain).to_string(),
        ],
        None => vec!["-".into(); BATCH_COLUMNS.len()],
    }
}

/// The failover columns scenario tables append when a run reports a
/// [`FaultSummary`]: client retries and cluster refusals, steps that
/// exhausted retries (`EIO`), journal rows replayed vs. lost across the
/// crash, standby promotions and the replication-lag rows they
/// replayed, admission deferrals and partition refusals, how the `EIO`
/// damage spread across nodes (distinct nodes, worst per-node count,
/// deepest backoff rung), then the availability gap and recovery CPU,
/// both in milliseconds. A fault-free run (plan unarmed) renders as
/// dashes so baseline and crash rows align in one table.
pub const FAULT_COLUMNS: [&str; 14] = [
    "retries",
    "nacks",
    "errors",
    "replayed",
    "lost acked",
    "fenced",
    "promoted",
    "lag rows",
    "deferred",
    "cut off",
    "eio nodes",
    "max depth",
    "gap (ms)",
    "recovery (ms)",
];

/// Formats a [`FaultSummary`] into the [`FAULT_COLUMNS`] cells.
///
/// # Examples
///
/// ```
/// use cofs::fault::FaultSummary;
/// use workloads::report::fault_cells;
///
/// let s = FaultSummary { retries: 9, gap_ms: 12.5, ..Default::default() };
/// assert_eq!(fault_cells(Some(&s))[0], "9");
/// assert_eq!(fault_cells(Some(&s))[12], "12.50");
/// assert_eq!(fault_cells(None)[0], "-");
/// ```
pub fn fault_cells(summary: Option<&FaultSummary>) -> Vec<String> {
    match summary {
        Some(s) => vec![
            s.retries.to_string(),
            s.nacks.to_string(),
            s.errors.to_string(),
            s.replayed_ops.to_string(),
            s.lost_acked_ops.to_string(),
            s.fenced_leases.to_string(),
            s.promotions.to_string(),
            s.lag_replayed.to_string(),
            s.admission_defers.to_string(),
            s.partition_nacks.to_string(),
            s.eio_nodes.to_string(),
            s.max_backoff_depth.to_string(),
            ms(s.gap_ms),
            ms(s.recovery_ms),
        ],
        None => vec!["-".into(); FAULT_COLUMNS.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(ms(1.2345), "1.23");
        assert_eq!(mibs(102.34), "102.3");
        assert_eq!(pct(0.256), "25.6%");
    }

    #[test]
    fn batch_cells_align_with_columns() {
        let s = BatchStats {
            ops_enqueued: 12,
            batches_issued: 3,
            flush_full: 2,
            flush_timer: 1,
            flush_drain: 0,
            largest_batch: 6,
        };
        let cells = batch_cells(Some(&s));
        assert_eq!(cells.len(), BATCH_COLUMNS.len());
        assert_eq!(cells, vec!["3", "4.0", "2", "1"]);
        assert!(batch_cells(None).iter().all(|c| c == "-"));
    }

    #[test]
    fn cache_cells_align_with_columns() {
        let s = CacheStats {
            hits: 9,
            misses: 1,
            invalidations: 2,
            recall_messages: 3,
            ..Default::default()
        };
        let cells = cache_cells(Some(&s));
        assert_eq!(cells.len(), CACHE_COLUMNS.len());
        assert_eq!(cells, vec!["9", "1", "90.0%", "2", "3"]);
        let dashes = cache_cells(None);
        assert!(dashes.iter().all(|c| c == "-"));
    }

    #[test]
    fn table_exposes_headers_and_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows(), [vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn shard_table_shows_skew() {
        use simcore::time::SimDuration;
        let usage = vec![
            ShardUsage {
                shard: 0,
                rpcs: 90,
                busy: SimDuration::from_millis(9),
                mean_wait: SimDuration::from_micros(500),
                two_phase: 0,
                recalls: 4,
                batches: 12,
                reads_charged: 180,
                reads_memoized: 45,
                read_bypasses: 7,
                journal_appends: 12,
                rows_coalesced: 33,
                apply_lag: SimDuration::from_micros(480),
                splits: 2,
                merges: 1,
                migrations: 5,
            },
            ShardUsage {
                shard: 1,
                rpcs: 10,
                busy: SimDuration::from_millis(1),
                mean_wait: SimDuration::ZERO,
                two_phase: 0,
                recalls: 0,
                batches: 0,
                reads_charged: 20,
                reads_memoized: 0,
                read_bypasses: 0,
                journal_appends: 0,
                rows_coalesced: 0,
                apply_lag: SimDuration::ZERO,
                splits: 0,
                merges: 0,
                migrations: 0,
            },
        ];
        let t = shard_utilization_table(&usage, SimTime::from_millis(10));
        let text = t.render();
        assert!(text.contains("90.0%"), "{text}");
        assert!(text.contains("10.0%"), "{text}");
        // Per-row skew: busy 9 ms and 1 ms against a 5 ms mean.
        assert!(text.contains("1.80"), "{text}");
        assert!(text.contains("0.20"), "{text}");
        assert!((shard_skew(&usage) - 1.8).abs() < 1e-9);
        // The elastic split/merge/migration counters are visible.
        assert!(text.contains("splits"), "{text}");
        assert!(text.contains("migr"), "{text}");
        // The memoization and priority-lane counters are visible.
        assert!(text.contains("memoized"), "{text}");
        assert!(text.contains("bypasses"), "{text}");
        assert!(text.contains("45"), "{text}");
        // So are the write-behind journal counters.
        assert!(text.contains("journal"), "{text}");
        assert!(text.contains("coalesced"), "{text}");
        assert!(text.contains("apply lag (ms)"), "{text}");
        assert!(text.contains("33"), "{text}");
        assert!(text.contains("0.48"), "{text}");
        assert_eq!(t.len(), 2);
        // A zero makespan must not divide by zero.
        let z = shard_utilization_table(&usage, SimTime::ZERO);
        assert!(z.render().contains("0.0%"));
    }
}
