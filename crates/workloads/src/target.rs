//! Benchmark targets: filesystems plus the between-phase reset hook.
//!
//! metarates and IOR run in *phases* separated by barriers; in the real
//! testbed the gap between phases lets write-behind daemons drain and
//! queues empty. [`BenchTarget::phase_reset`] models that gap: it
//! completes background work and rewinds queueing resources to virtual
//! time zero so the next phase's driver run starts clean, while cache
//! and token state (deliberately) survive.

use cofs::fs::CofsFs;
use pfs::fs::PfsFs;
use vfs::fs::FileSystem;
use vfs::memfs::MemFs;

/// A filesystem that can host benchmark phases.
pub trait BenchTarget: FileSystem {
    /// Completes background work and rewinds per-phase queue state.
    fn phase_reset(&mut self) {}

    /// A short label for report tables.
    fn target_label(&self) -> &'static str {
        "fs"
    }
}

impl BenchTarget for MemFs {
    fn target_label(&self) -> &'static str {
        "memfs"
    }
}

impl BenchTarget for PfsFs {
    fn phase_reset(&mut self) {
        self.quiesce();
    }

    fn target_label(&self) -> &'static str {
        "gpfs"
    }
}

impl<U: BenchTarget> BenchTarget for CofsFs<U> {
    fn phase_reset(&mut self) {
        self.reset_time();
        self.under_mut().phase_reset();
    }

    fn target_label(&self) -> &'static str {
        "cofs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cofs::config::{CofsConfig, MdsNetwork};
    use netsim::cluster::ClusterBuilder;
    use pfs::config::PfsConfig;
    use simcore::time::SimDuration;

    #[test]
    fn labels() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let gpfs = PfsFs::new(cluster, PfsConfig::default());
        assert_eq!(gpfs.target_label(), "gpfs");
        let cofs = CofsFs::new(
            MemFs::new(),
            CofsConfig::default(),
            MdsNetwork::uniform(SimDuration::from_micros(200)),
            1,
        );
        assert_eq!(cofs.target_label(), "cofs");
        assert_eq!(MemFs::new().target_label(), "memfs");
    }

    #[test]
    fn reset_is_idempotent() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut gpfs = PfsFs::new(cluster, PfsConfig::default());
        gpfs.phase_reset();
        gpfs.phase_reset();
        let mut mem = MemFs::new();
        mem.phase_reset();
    }
}
