//! Benchmark targets: filesystems plus the between-phase reset hook.
//!
//! metarates and IOR run in *phases* separated by barriers; in the real
//! testbed the gap between phases lets write-behind daemons drain and
//! queues empty. [`BenchTarget::phase_reset`] models that gap: it
//! completes background work and rewinds queueing resources to virtual
//! time zero so the next phase's driver run starts clean, while cache
//! and token state (deliberately) survive.

use cofs::batch::BatchStats;
use cofs::client_cache::CacheStats;
use cofs::fault::FaultSummary;
use cofs::fs::CofsFs;
use cofs::mds_cluster::ShardUsage;
use pfs::fs::PfsFs;
use simcore::time::SimTime;
use vfs::fs::FileSystem;
use vfs::memfs::MemFs;

/// A filesystem that can host benchmark phases.
pub trait BenchTarget: FileSystem {
    /// Completes background work and rewinds per-phase queue state.
    fn phase_reset(&mut self) {}

    /// A short label for report tables.
    fn target_label(&self) -> &'static str {
        "fs"
    }

    /// Per-shard metadata-service load since the last reset — empty
    /// for targets without a sharded MDS.
    fn shard_usage(&self) -> Vec<ShardUsage> {
        Vec::new()
    }

    /// Client-side metadata-cache counters since the last reset —
    /// `None` for targets without a client cache (or with it off), so
    /// reports can distinguish "no cache" from "cache saw no traffic".
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Flushes any buffered asynchronous work at the *end* of a
    /// measured phase and returns the virtual time its tail completed
    /// — `None` when nothing was buffered. Scenario makespans fold
    /// this in, so pipelined batching cannot hide its wire time.
    fn drain_outstanding(&mut self) -> Option<SimTime> {
        None
    }

    /// Batching counters since the last reset — `None` for targets
    /// without a batch pipeline (or with it off).
    fn batch_stats(&self) -> Option<BatchStats> {
        None
    }

    /// When the last acked-but-unapplied write-behind batch finishes
    /// applying, given the workload finished at `horizon` — the end of
    /// the crash-consistency window scenario reports surface. Targets
    /// without deferred application return `horizon`: the ack is the
    /// apply.
    fn apply_horizon(&self, horizon: SimTime) -> SimTime {
        horizon
    }

    /// Fault/recovery accounting since the last reset — `None` for
    /// targets without an armed fault plan, so fault-free results stay
    /// byte-identical to targets that predate fault injection.
    fn fault_summary(&self) -> Option<FaultSummary> {
        None
    }
}

impl BenchTarget for MemFs {
    fn target_label(&self) -> &'static str {
        "memfs"
    }
}

impl BenchTarget for PfsFs {
    fn phase_reset(&mut self) {
        self.quiesce();
    }

    fn target_label(&self) -> &'static str {
        "gpfs"
    }
}

impl<U: BenchTarget> BenchTarget for CofsFs<U> {
    fn phase_reset(&mut self) {
        self.reset_time();
        self.under_mut().phase_reset();
    }

    fn target_label(&self) -> &'static str {
        "cofs"
    }

    fn shard_usage(&self) -> Vec<ShardUsage> {
        CofsFs::shard_usage(self)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        if self.client_cache().enabled() {
            Some(CofsFs::cache_stats(self))
        } else {
            None
        }
    }

    fn drain_outstanding(&mut self) -> Option<SimTime> {
        self.drain_batches()
    }

    fn batch_stats(&self) -> Option<BatchStats> {
        if self.batch_pipeline().enabled() {
            Some(CofsFs::batch_stats(self))
        } else {
            None
        }
    }

    fn apply_horizon(&self, horizon: SimTime) -> SimTime {
        CofsFs::apply_horizon(self, horizon)
    }

    fn fault_summary(&self) -> Option<FaultSummary> {
        CofsFs::fault_summary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cofs::config::{CofsConfig, MdsNetwork};
    use netsim::cluster::ClusterBuilder;
    use pfs::config::PfsConfig;
    use simcore::time::SimDuration;

    #[test]
    fn labels() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let gpfs = PfsFs::new(cluster, PfsConfig::default());
        assert_eq!(gpfs.target_label(), "gpfs");
        let cofs = CofsFs::new(
            MemFs::new(),
            CofsConfig::default(),
            MdsNetwork::uniform(SimDuration::from_micros(200)),
            1,
        );
        assert_eq!(cofs.target_label(), "cofs");
        assert_eq!(MemFs::new().target_label(), "memfs");
    }

    #[test]
    fn cofs_exposes_shard_usage_and_others_do_not() {
        use netsim::ids::NodeId;
        use vfs::fs::OpCtx;
        use vfs::path::vpath;
        use vfs::types::Mode;

        let cfg = CofsConfig::default().with_shards(2, cofs::config::ShardPolicyKind::HashByParent);
        let mut cofs = CofsFs::new(
            MemFs::new(),
            cfg,
            MdsNetwork::uniform(SimDuration::from_micros(200)),
            1,
        );
        let ctx = OpCtx::test(NodeId(0));
        cofs.mkdir(&ctx, &vpath("/d"), Mode::dir_default()).unwrap();
        let usage = BenchTarget::shard_usage(&cofs);
        assert_eq!(usage.len(), 2);
        assert_eq!(usage.iter().map(|u| u.rpcs).sum::<u64>(), 1);
        assert!(MemFs::new().shard_usage().is_empty());
    }

    #[test]
    fn cache_stats_visible_only_when_enabled() {
        use simcore::time::SimDuration;

        let off = CofsFs::new(
            MemFs::new(),
            CofsConfig::default(),
            MdsNetwork::uniform(SimDuration::from_micros(200)),
            1,
        );
        assert!(BenchTarget::cache_stats(&off).is_none());
        let on = CofsFs::new(
            MemFs::new(),
            CofsConfig::default().with_client_cache(64, SimDuration::from_secs(1)),
            MdsNetwork::uniform(SimDuration::from_micros(200)),
            1,
        );
        assert_eq!(BenchTarget::cache_stats(&on), Some(CacheStats::default()));
        assert!(MemFs::new().cache_stats().is_none());
    }

    #[test]
    fn reset_is_idempotent() {
        let cluster = ClusterBuilder::new().clients(2).servers(2).build();
        let mut gpfs = PfsFs::new(cluster, PfsConfig::default());
        gpfs.phase_reset();
        gpfs.phase_reset();
        let mut mem = MemFs::new();
        mem.phase_reset();
    }
}
