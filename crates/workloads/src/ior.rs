//! The IOR (Interleaved Or Random) benchmark, v2-style (LLNL).
//!
//! Reimplemented from the paper's description (§IV): "IOR … provides
//! aggregate I/O data rates for both parallel and sequential
//! read/write operations to shared and separate files in a parallel
//! file system. The benchmark was executed using the POSIX interface
//! with aggregate data sizes of 256MB, 1GB and 4GB."
//!
//! Each process transfers its share of the aggregate in fixed-size
//! transfers; the aggregate data rate is total bytes over the
//! (virtual) wall time of the phase. There is deliberately no barrier
//! between `open` and the first transfer: the paper's key observation
//! for separate-file sequential writes is that slow parallel opens
//! stagger the transfer starts and waste bandwidth.

use crate::target::BenchTarget;
use netsim::ids::{NodeId, Pid};
use simcore::rng::SimRng;
use simcore::time::SimTime;
use vfs::driver::{run, Action, ClientScript};
use vfs::fs::OpCtx;
use vfs::path::{vpath, VPath};
use vfs::types::{Mode, OpenFlags};

/// One file per process, or one file shared by all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileMode {
    /// Each process does I/O to its own file ("separate files").
    FilePerProcess,
    /// All processes share one file, each owning a disjoint segment.
    Shared,
}

impl FileMode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            FileMode::FilePerProcess => "separate",
            FileMode::Shared => "shared",
        }
    }
}

/// Sequential or random transfer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Transfers in offset order.
    Sequential,
    /// Transfers in a shuffled order.
    Random,
}

impl Access {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Access::Sequential => "sequential",
            Access::Random => "random",
        }
    }
}

/// Read or write phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Measure reads (files are pre-written by the same nodes).
    Read,
    /// Measure writes.
    Write,
}

impl IoOp {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        }
    }
}

/// IOR parameters.
#[derive(Debug, Clone)]
pub struct IorConfig {
    /// Participating client nodes (one process each, as the paper's
    /// trends "are determined by nodes as a whole").
    pub nodes: usize,
    /// Total bytes moved across all processes.
    pub aggregate_bytes: u64,
    /// Bytes per POSIX transfer.
    pub transfer_bytes: u64,
    /// Separate files or one shared file.
    pub file_mode: FileMode,
    /// Sequential or random order.
    pub access: Access,
    /// Directory holding the benchmark files (shared, as in the paper).
    pub dir: VPath,
    /// RNG seed for random access order.
    pub seed: u64,
}

impl IorConfig {
    /// A standard configuration: 1 MiB transfers in `/ior`.
    pub fn new(nodes: usize, aggregate_bytes: u64, file_mode: FileMode, access: Access) -> Self {
        IorConfig {
            nodes,
            aggregate_bytes,
            transfer_bytes: 1024 * 1024,
            file_mode,
            access,
            dir: vpath("/ior"),
            seed: 0xC0F5,
        }
    }

    /// Bytes each process moves.
    pub fn bytes_per_proc(&self) -> u64 {
        self.aggregate_bytes / self.nodes as u64
    }

    fn transfers_per_proc(&self) -> u64 {
        self.bytes_per_proc().div_ceil(self.transfer_bytes).max(1)
    }

    fn file_of(&self, client: usize) -> VPath {
        match self.file_mode {
            FileMode::FilePerProcess => self.dir.join(&format!("data.{client}")),
            FileMode::Shared => self.dir.join("data.shared"),
        }
    }

    /// Byte offset of transfer `k` for `client` within its file.
    fn offset_of(&self, client: usize, k: u64) -> u64 {
        let base = match self.file_mode {
            FileMode::FilePerProcess => 0,
            FileMode::Shared => self.bytes_per_proc() * client as u64,
        };
        base + k * self.transfer_bytes
    }
}

/// Result of one IOR phase.
#[derive(Debug)]
pub struct IorResult {
    /// What ran.
    pub op: IoOp,
    /// Aggregate data rate in MiB/s (the figure IOR prints).
    pub aggregate_mib_s: f64,
    /// Virtual wall time of the measured phase.
    pub makespan: SimTime,
    /// Total bytes moved.
    pub bytes: u64,
}

/// Builds the transfer order for one client.
fn order(cfg: &IorConfig, client: usize) -> Vec<u64> {
    let n = cfg.transfers_per_proc();
    let mut ks: Vec<u64> = (0..n).collect();
    if cfg.access == Access::Random {
        let mut rng = SimRng::seed_from(cfg.seed ^ (client as u64).wrapping_mul(0x9E37));
        rng.shuffle(&mut ks);
    }
    ks
}

/// Runs one IOR phase (read or write) on a fresh filesystem.
///
/// Write phases create (or open) the files and write them. Read
/// phases first run an unmeasured write pass *from the same nodes*
/// (the paper notes files "were created and written in the same node
/// they were accessed", which is what lets bare GPFS serve small
/// separate files from its cache), then measure the reads.
///
/// # Panics
///
/// Panics if any scripted operation fails.
pub fn run_ior_op<F: BenchTarget>(fs: &mut F, cfg: &IorConfig, op: IoOp) -> IorResult {
    run_ior_inner(fs, cfg, op)
}

fn write_scripts(cfg: &IorConfig, measured: bool) -> Vec<ClientScript> {
    let mut scripts = Vec::new();
    for c in 0..cfg.nodes {
        let mut s = ClientScript::new(NodeId(c as u32), Pid(1));
        s.push(Action::Barrier);
        let path = cfg.file_of(c);
        // Separate files: each process creates its own file (in the
        // shared directory — the contended open/create path).
        // Shared file: client 0 creates it; everyone else opens it.
        let open_label = if measured { Some("open") } else { None };
        match (cfg.file_mode, c) {
            (FileMode::FilePerProcess, _) | (FileMode::Shared, 0) => {
                let a = Action::Create {
                    path,
                    mode: Mode::file_default(),
                    slot: 0,
                };
                match open_label {
                    Some(l) => s.push_measured(l, a),
                    None => s.push(a),
                };
            }
            (FileMode::Shared, _) => {
                let a = Action::Open {
                    path,
                    flags: OpenFlags::WRONLY,
                    slot: 0,
                };
                match open_label {
                    Some(l) => s.push_measured(l, a),
                    None => s.push(a),
                };
            }
        }
        for k in order(cfg, c) {
            let a = Action::Write {
                slot: 0,
                offset: cfg.offset_of(c, k),
                len: cfg.transfer_bytes,
            };
            if measured {
                s.push_measured("xfer", a);
            } else {
                s.push(a);
            }
        }
        s.push(Action::Close { slot: 0 });
        scripts.push(s);
    }
    scripts
}

fn read_scripts(cfg: &IorConfig) -> Vec<ClientScript> {
    let mut scripts = Vec::new();
    for c in 0..cfg.nodes {
        let mut s = ClientScript::new(NodeId(c as u32), Pid(1));
        s.push(Action::Barrier);
        s.push_measured(
            "open",
            Action::Open {
                path: cfg.file_of(c),
                flags: OpenFlags::RDONLY,
                slot: 0,
            },
        );
        for k in order(cfg, c) {
            s.push_measured(
                "xfer",
                Action::Read {
                    slot: 0,
                    offset: cfg.offset_of(c, k),
                    len: cfg.transfer_bytes,
                },
            );
        }
        s.push(Action::Close { slot: 0 });
        scripts.push(s);
    }
    scripts
}

fn run_ior_inner<F: BenchTarget>(fs: &mut F, cfg: &IorConfig, op: IoOp) -> IorResult {
    assert!(cfg.nodes > 0, "IOR needs at least one process");
    let setup = OpCtx::test(NodeId(0));
    fs.mkdir(&setup, &cfg.dir, Mode::dir_default())
        .expect("setup mkdir");

    if op == IoOp::Read {
        // Unmeasured write pass to materialize the data on the same
        // nodes that will read it.
        let mut shuffled = cfg.clone();
        shuffled.access = Access::Sequential;
        let report = run(fs, write_scripts(&shuffled, false));
        report.expect_clean();
        fs.phase_reset();
    }

    let scripts = match op {
        IoOp::Write => {
            // Write measurement runs against fresh file names when a
            // read pre-pass did not happen; it did not, so just go.
            write_scripts(cfg, true)
        }
        IoOp::Read => read_scripts(cfg),
    };
    let report = run(fs, scripts);
    report.expect_clean();
    let bytes = cfg.transfers_per_proc() * cfg.transfer_bytes * cfg.nodes as u64;
    let secs = report.makespan.as_secs_f64().max(1e-9);
    IorResult {
        op,
        aggregate_mib_s: bytes as f64 / (1024.0 * 1024.0) / secs,
        makespan: report.makespan,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::fs::FileSystem;
    use vfs::memfs::MemFs;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn write_phase_moves_all_bytes() {
        let cfg = IorConfig::new(4, 64 * MB, FileMode::FilePerProcess, Access::Sequential);
        let r = run_ior_op(&mut MemFs::new(), &cfg, IoOp::Write);
        assert_eq!(r.bytes, 64 * MB);
        assert!(r.aggregate_mib_s > 0.0);
    }

    #[test]
    fn read_phase_prewrites_then_reads() {
        let cfg = IorConfig::new(2, 16 * MB, FileMode::FilePerProcess, Access::Sequential);
        let mut fs = MemFs::new();
        let r = run_ior_op(&mut fs, &cfg, IoOp::Read);
        assert_eq!(r.op, IoOp::Read);
        assert_eq!(r.bytes, 16 * MB);
    }

    #[test]
    fn shared_file_mode_uses_one_file() {
        let cfg = IorConfig::new(4, 16 * MB, FileMode::Shared, Access::Sequential);
        let mut fs = MemFs::new();
        run_ior_op(&mut fs, &cfg, IoOp::Write);
        let ctx = OpCtx::test(NodeId(0));
        let entries = fs.readdir(&ctx, &cfg.dir).unwrap().value;
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "data.shared");
        // The shared file holds the whole aggregate.
        let attr = fs.stat(&ctx, &cfg.dir.join("data.shared")).unwrap().value;
        assert_eq!(attr.size, 16 * MB);
    }

    #[test]
    fn random_order_is_a_permutation() {
        let cfg = IorConfig::new(1, 8 * MB, FileMode::FilePerProcess, Access::Random);
        let mut ks = order(&cfg, 0);
        ks.sort_unstable();
        assert_eq!(ks, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn offsets_partition_shared_file() {
        let cfg = IorConfig::new(4, 64 * MB, FileMode::Shared, Access::Sequential);
        assert_eq!(cfg.offset_of(0, 0), 0);
        assert_eq!(cfg.offset_of(1, 0), 16 * MB);
        assert_eq!(cfg.offset_of(1, 3), 16 * MB + 3 * MB);
        assert_eq!(cfg.bytes_per_proc(), 16 * MB);
    }

    #[test]
    fn labels() {
        assert_eq!(FileMode::Shared.label(), "shared");
        assert_eq!(FileMode::FilePerProcess.label(), "separate");
        assert_eq!(Access::Random.label(), "random");
        assert_eq!(IoOp::Read.label(), "read");
    }
}
