//! The metarates benchmark (UCAR / NCAR Scientific Computing Division).
//!
//! Reimplemented from the paper's description (§II-A): "The operations
//! exercised are create, stat and utime; additionally, we also
//! included code for open/close sequences. The four measurements are
//! taken consecutively: first all files are created in parallel, and
//! then deleted; for each of the other operations, the first node
//! sequentially creates all files, which are then accessed (stat'd,
//! utime'd or open/close'd) in parallel, and then deleted again by the
//! first node." All files live in a single shared directory.

use crate::target::BenchTarget;
use netsim::ids::{NodeId, Pid};
use simcore::stats::Summary;
use simcore::time::SimTime;
use vfs::driver::{run, Action, ClientScript};
use vfs::fs::OpCtx;
use vfs::path::VPath;
use vfs::types::{Mode, OpenFlags};

/// Which metadata operation a phase measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaOp {
    /// Parallel file creation.
    Create,
    /// Parallel `stat`.
    Stat,
    /// Parallel `utime`.
    Utime,
    /// Parallel `open` + `close` (measured as one sample).
    OpenClose,
}

impl MetaOp {
    /// All four operations, in the paper's order.
    pub const ALL: [MetaOp; 4] = [
        MetaOp::Create,
        MetaOp::Stat,
        MetaOp::Utime,
        MetaOp::OpenClose,
    ];

    /// The measurement label used in driver reports.
    pub fn label(self) -> &'static str {
        match self {
            MetaOp::Create => "create",
            MetaOp::Stat => "stat",
            MetaOp::Utime => "utime",
            MetaOp::OpenClose => "open_close",
        }
    }
}

/// metarates parameters.
#[derive(Debug, Clone)]
pub struct MetaratesConfig {
    /// Client nodes participating.
    pub nodes: usize,
    /// Processes per node (the paper coalesces 1 and 2).
    pub procs_per_node: usize,
    /// Files accessed per process.
    pub files_per_proc: usize,
    /// The shared directory everything happens in.
    pub shared_dir: VPath,
}

impl MetaratesConfig {
    /// A standard configuration with one process per node.
    pub fn new(nodes: usize, files_per_node: usize) -> Self {
        MetaratesConfig {
            nodes,
            procs_per_node: 1,
            files_per_proc: files_per_node,
            shared_dir: vfs::path::vpath("/shared"),
        }
    }

    /// Total files in the shared directory.
    pub fn total_files(&self) -> usize {
        self.nodes * self.procs_per_node * self.files_per_proc
    }

    fn clients(&self) -> Vec<(NodeId, Pid)> {
        let mut v = Vec::new();
        for n in 0..self.nodes {
            for p in 0..self.procs_per_node {
                v.push((NodeId(n as u32), Pid(p as u32 + 1)));
            }
        }
        v
    }
}

/// Result of one measured phase.
#[derive(Debug)]
pub struct PhaseResult {
    /// Which operation was measured.
    pub op: MetaOp,
    /// Per-operation latency samples.
    pub summary: Summary,
    /// Wall-clock (virtual) time of the measured phase.
    pub makespan: SimTime,
}

impl PhaseResult {
    /// The figure the paper plots: average time per operation, in ms.
    pub fn mean_ms(&self) -> f64 {
        self.summary.mean_millis()
    }
}

fn file_name(idx: usize) -> String {
    format!("f{idx}")
}

/// Runs one metarates phase on a fresh filesystem.
///
/// For [`MetaOp::Create`], every client creates (and closes) its own
/// files in the shared directory, in parallel. For the other
/// operations, node 0 first creates all files sequentially
/// (unmeasured), then all clients access disjoint contiguous ranges in
/// parallel.
///
/// # Panics
///
/// Panics if any scripted operation fails — a failing script
/// invalidates the measurement.
pub fn run_phase<F: BenchTarget>(fs: &mut F, cfg: &MetaratesConfig, op: MetaOp) -> PhaseResult {
    let clients = cfg.clients();
    let total = cfg.total_files();
    let dir = &cfg.shared_dir;

    // Setup: the shared directory (as node 0, before the clock starts).
    let setup = OpCtx::test(NodeId(0));
    fs.mkdir(&setup, dir, Mode::dir_default())
        .expect("setup mkdir");

    if op != MetaOp::Create {
        // Node 0 sequentially creates all files (paper: "the first
        // node sequentially creates all files").
        let mut now = SimTime::ZERO;
        for i in 0..total {
            let ctx = setup.at(now);
            let t = fs
                .create(&ctx, &dir.join(&file_name(i)), Mode::file_default())
                .expect("setup create");
            let ctx2 = setup.at(t.end);
            now = fs.close(&ctx2, t.value).expect("setup close").end;
        }
    }
    fs.phase_reset();

    // Measured phase.
    let mut scripts = Vec::new();
    for (ci, &(node, pid)) in clients.iter().enumerate() {
        let mut s = ClientScript::new(node, pid);
        s.push(Action::Barrier);
        match op {
            MetaOp::Create => {
                for i in 0..cfg.files_per_proc {
                    let path = dir.join(&format!("c{ci}.{i}"));
                    s.push_measured(
                        "create",
                        Action::Create {
                            path,
                            mode: Mode::file_default(),
                            slot: 0,
                        },
                    );
                    s.push(Action::Close { slot: 0 });
                }
            }
            MetaOp::Stat | MetaOp::Utime | MetaOp::OpenClose => {
                let base = ci * cfg.files_per_proc;
                for i in 0..cfg.files_per_proc {
                    let path = dir.join(&file_name(base + i));
                    let action = match op {
                        MetaOp::Stat => Action::Stat(path),
                        MetaOp::Utime => Action::Utime(path),
                        MetaOp::OpenClose => Action::OpenClose(path, OpenFlags::RDONLY),
                        MetaOp::Create => unreachable!(),
                    };
                    s.push_measured(op.label(), action);
                }
            }
        }
        scripts.push(s);
    }
    let report = run(fs, scripts);
    report.expect_clean();
    let summary = report
        .per_label
        .get(op.label())
        .cloned()
        .unwrap_or_else(|| Summary::new(op.label()));
    PhaseResult {
        op,
        summary,
        makespan: report.makespan,
    }
}

/// Runs one phase on a filesystem built by `factory` (each phase gets
/// a pristine filesystem, mirroring independent benchmark runs).
pub fn run_phase_fresh<F: BenchTarget>(
    factory: impl FnOnce() -> F,
    cfg: &MetaratesConfig,
    op: MetaOp,
) -> PhaseResult {
    let mut fs = factory();
    run_phase(&mut fs, cfg, op)
}

/// Runs all four phases, each on a fresh filesystem.
pub fn run_all<F: BenchTarget>(
    mut factory: impl FnMut() -> F,
    cfg: &MetaratesConfig,
) -> Vec<PhaseResult> {
    MetaOp::ALL
        .iter()
        .map(|&op| run_phase_fresh(&mut factory, cfg, op))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::memfs::MemFs;

    fn cfg(nodes: usize, fpn: usize) -> MetaratesConfig {
        MetaratesConfig::new(nodes, fpn)
    }

    #[test]
    fn create_phase_counts_match() {
        let c = cfg(4, 8);
        let r = run_phase(&mut MemFs::new(), &c, MetaOp::Create);
        assert_eq!(r.op, MetaOp::Create);
        assert_eq!(r.summary.count(), 32);
        assert!(r.mean_ms() >= 0.0);
    }

    #[test]
    fn stat_phase_counts_match() {
        let c = cfg(2, 16);
        let r = run_phase(&mut MemFs::new(), &c, MetaOp::Stat);
        assert_eq!(r.summary.count(), 32);
    }

    #[test]
    fn utime_and_openclose_run() {
        let c = cfg(2, 4);
        for op in [MetaOp::Utime, MetaOp::OpenClose] {
            let r = run_phase_fresh(MemFs::new, &c, op);
            assert_eq!(r.summary.count(), 8, "{:?}", op);
        }
    }

    #[test]
    fn run_all_produces_four_phases() {
        let c = cfg(2, 4);
        let results = run_all(MemFs::new, &c);
        assert_eq!(results.len(), 4);
        let labels: Vec<&str> = results.iter().map(|r| r.op.label()).collect();
        assert_eq!(labels, vec!["create", "stat", "utime", "open_close"]);
    }

    #[test]
    fn multiple_procs_per_node() {
        let c = MetaratesConfig {
            nodes: 2,
            procs_per_node: 2,
            files_per_proc: 4,
            shared_dir: vfs::path::vpath("/shared"),
        };
        assert_eq!(c.total_files(), 16);
        let r = run_phase(&mut MemFs::new(), &c, MetaOp::Create);
        assert_eq!(r.summary.count(), 16);
    }
}
