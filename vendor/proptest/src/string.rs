//! Generator for a small regex subset: literals, character classes
//! with ranges, groups, and `{m,n}` / `{n}` / `*` / `+` / `?`
//! quantifiers. Enough for patterns like `"(/[a-z.]{1,8}){1,6}"`.

use crate::test_runner::Rng;

#[derive(Debug)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<Quantified>),
}

#[derive(Debug)]
struct Quantified {
    node: Node,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`. Panics on syntax this
/// subset does not understand, which surfaces as a test error rather
/// than silently generating the wrong language.
pub fn gen_from_pattern(pattern: &str, rng: &mut Rng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (seq, rest) = parse_seq(&chars, 0);
    assert!(
        rest == chars.len(),
        "unsupported regex pattern {pattern:?}: trailing input at {rest}"
    );
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], mut i: usize) -> (Vec<Quantified>, usize) {
    let mut seq = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        let (node, next) = parse_atom(chars, i);
        let (min, max, next) = parse_quantifier(chars, next);
        seq.push(Quantified { node, min, max });
        i = next;
    }
    (seq, i)
}

fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
    match chars[i] {
        '(' => {
            let (seq, after) = parse_seq(chars, i + 1);
            assert!(
                after < chars.len() && chars[after] == ')',
                "unsupported regex: unterminated group"
            );
            (Node::Group(seq), after + 1)
        }
        '[' => parse_class(chars, i + 1),
        '\\' => {
            assert!(i + 1 < chars.len(), "unsupported regex: trailing backslash");
            (Node::Literal(chars[i + 1]), i + 2)
        }
        c => {
            assert!(
                !matches!(c, '*' | '+' | '?' | '{' | '}' | ']' | '|' | '^' | '$'),
                "unsupported regex metacharacter {c:?}"
            );
            (Node::Literal(c), i + 1)
        }
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            ranges.push((lo, chars[i + 2]));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unsupported regex: unterminated class");
    (Node::Class(ranges), i + 1)
}

fn parse_quantifier(chars: &[char], i: usize) -> (u32, u32, usize) {
    if i >= chars.len() {
        return (1, 1, i);
    }
    match chars[i] {
        '*' => (0, 8, i + 1),
        '+' => (1, 8, i + 1),
        '?' => (0, 1, i + 1),
        '{' => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unsupported regex: unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, "")) => {
                    let m: u32 = m.parse().expect("bad quantifier");
                    (m, m + 8)
                }
                Some((m, n)) => (
                    m.parse().expect("bad quantifier"),
                    n.parse().expect("bad quantifier"),
                ),
                None => {
                    let n: u32 = body.parse().expect("bad quantifier");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn emit_seq(seq: &[Quantified], rng: &mut Rng, out: &mut String) {
    for q in seq {
        let reps = rng.range_u64(u64::from(q.min), u64::from(q.max) + 1) as u32;
        for _ in 0..reps {
            emit_node(&q.node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut Rng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                .sum();
            let mut pick = rng.range_u64(0, total);
            for (lo, hi) in ranges {
                let span = u64::from(*hi as u32 - *lo as u32 + 1);
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                    break;
                }
                pick -= span;
            }
        }
        Node::Group(seq) => emit_seq(seq, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_match_shape() {
        let mut rng = Rng::for_case("string::paths", 7);
        for _ in 0..200 {
            let s = gen_from_pattern("(/[a-z.]{1,8}){1,6}", &mut rng);
            assert!(s.starts_with('/'));
            for seg in s.split('/').skip(1) {
                assert!(!seg.is_empty() && seg.len() <= 8, "bad segment in {s:?}");
                assert!(seg.chars().all(|c| c.is_ascii_lowercase() || c == '.'));
            }
        }
    }

    #[test]
    fn fixed_count_and_optional() {
        let mut rng = Rng::for_case("string::fixed", 1);
        for _ in 0..50 {
            let s = gen_from_pattern("a{3}b?", &mut rng);
            assert!(s == "aaa" || s == "aaab");
        }
    }
}
