//! The `Strategy` trait and the built-in strategies the workspace uses.

use std::fmt::Debug;
use std::ops::Range;

use crate::string::gen_from_pattern;
use crate::test_runner::Rng;

/// A source of generated values. Unlike real proptest this shim has no
/// shrinking, so a strategy is just a deterministic generator.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut Rng) -> i32 {
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.range_u64(0, span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut Rng) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.range_u64(0, span) as i64)
    }
}

/// String strategy from a regex-subset pattern (e.g. `"(/[a-z]{1,8}){1,6}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        gen_from_pattern(self, rng)
    }
}

/// Uniform boolean strategy (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Inclusive-exclusive length bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec`s of another strategy's values.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let len = rng.range_u64(
            self.size.lo as u64,
            self.size.hi.max(self.size.lo + 1) as u64,
        );
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
