//! Minimal, dependency-free shim of the [proptest](https://crates.io/crates/proptest)
//! API surface used by this workspace.
//!
//! The build container has no network access to crates.io, so the real
//! proptest cannot be fetched. This shim keeps the test sources
//! byte-identical to what they would be against real proptest by
//! implementing exactly the subset they use:
//!
//! - the `proptest!` macro over `#[test] fn name(pat in strategy, ...)`
//! - `prop_assert!` / `prop_assert_eq!`
//! - integer range strategies (`0u64..1000` etc.)
//! - tuple strategies (arity 2–4)
//! - `prop::collection::vec(strategy, size_range)`
//! - `prop::bool::ANY`
//! - string strategies from a regex *subset*: literals, `[a-z.]`
//!   classes (with ranges), `(...)` groups, and `{m,n}`/`{n}`/`*`/`+`/`?`
//!   quantifiers — enough for patterns like `"(/[a-z.]{1,8}){1,6}"`.
//!
//! Generation is deterministic (fixed base seed, one stream per case)
//! so failures reproduce. There is no shrinking: on failure the
//! generated inputs are printed as-is.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Strategy combinators grouped like real proptest's `prop` module.
pub mod prop {
    /// Collection strategies (`vec`).
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Strategy producing a `Vec` whose length is drawn from
        /// `size` and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::BoolStrategy;

        /// Uniformly random boolean.
        pub const ANY: BoolStrategy = BoolStrategy;
    }
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. Each body runs [`test_runner::CASES`]
/// times (or the count from an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`) with freshly
/// generated inputs; `prop_assert*` failures abort the case and panic
/// with the generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($cfg).cases;
                for case in 0..cases {
                    let mut rng = $crate::test_runner::Rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let dbg_args = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            cases,
                            e,
                            dbg_args,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Like `assert!`, but aborts only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but aborts only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                l, r
            )));
        }
    }};
}
