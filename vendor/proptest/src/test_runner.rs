//! Deterministic case runner: seeded RNG streams and case-level errors.

use std::fmt;

/// Default number of generated cases per property.
pub const CASES: u32 = 96;

/// Per-`proptest!` block configuration (case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error aborting a single generated case (from `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Small, fast, deterministic RNG (splitmix64 seeded xorshift64*).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// RNG for one (test, case) pair; distinct tests get distinct
    /// deterministic streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name, mixed with the
        // case index via splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = splitmix64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        if state == 0 {
            state = 0xdead_beef_cafe_f00d;
        }
        Rng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
