//! Minimal, dependency-free shim of the [criterion](https://crates.io/crates/criterion)
//! API surface used by this workspace's `benches/paper.rs`.
//!
//! The build container cannot reach crates.io, so the real criterion
//! cannot be fetched. This shim implements just enough — `Criterion`,
//! `Bencher::iter`, `criterion_group!` (named form with `config`), and
//! `criterion_main!` — that the bench harness compiles with
//! `harness = false` and produces simple wall-clock timings under
//! `cargo bench`. Under `cargo test` (which passes `--test` to bench
//! binaries) each benchmark body runs once as a smoke check.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver. Collects `sample_size` timed samples per
/// benchmark and prints a mean/min/max summary line.
///
/// Like real criterion, positional command-line arguments act as name
/// filters: `cargo bench -p cofs-bench -- memo_ prio_` runs only the
/// benchmarks whose names contain one of those substrings (flags
/// starting with `-` are ignored). With no positional arguments every
/// benchmark runs.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            test_mode,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark. In `--test` mode the body executes once
    /// (smoke check); otherwise it is timed `sample_size` times.
    /// Benchmarks not matching the command-line name filters (if any)
    /// are skipped.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|filt| name.contains(filt.as_str()))
        {
            return self;
        }
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher { nanos: Vec::new() };
        for _ in 0..samples {
            f(&mut b);
        }
        if self.test_mode {
            println!("test {name} ... ok");
        } else if !b.nanos.is_empty() {
            let min = *b.nanos.iter().min().unwrap();
            let max = *b.nanos.iter().max().unwrap();
            let mean = b.nanos.iter().sum::<u128>() / b.nanos.len() as u128;
            println!(
                "{name:<44} mean {:>12} ns   min {:>12} ns   max {:>12} ns   ({} samples)",
                mean,
                min,
                max,
                b.nanos.len()
            );
        }
        self
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `f`, keeping its output live via
    /// `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.nanos.push(start.elapsed().as_nanos());
        std_black_box(out);
    }
}

/// Declares a benchmark group. Supports both the named form
/// (`name = ...; config = ...; targets = ...`) and the positional form
/// (`group_name, target1, target2`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
