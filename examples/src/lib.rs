//! # cofs-examples — runnable examples for the COFS reproduction
//!
//! - `quickstart` — mount COFS over an in-memory filesystem, create a
//!   virtual tree, and peek at the decoupled underlying layout;
//! - `checkpoint_storm` — the paper's motivating HPC pattern: every
//!   node checkpoints into one shared directory, GPFS vs. COFS;
//! - `job_bundle` — bunches of small jobs writing outputs to a shared
//!   directory, GPFS vs. COFS;
//! - `namespace_tour` — renames, hard links, and symlinks staying
//!   pure-metadata under COFS;
//! - `hot_stat_cache` — the client-side metadata cache eliminating
//!   stat-storm round trips, with lease recalls keeping every node
//!   coherent.
//!
//! Run with `cargo run -p cofs-examples --release --bin quickstart`.

/// Builds the standard COFS-over-GPFS stack used by the examples.
pub fn demo_stack(nodes: usize) -> cofs::fs::CofsFs<pfs::fs::PfsFs> {
    let cluster = netsim::cluster::ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .with_metadata_host()
        .build();
    let host = cluster.metadata_host().expect("metadata host requested");
    let net = cofs::config::MdsNetwork::from_cluster(&cluster, host);
    cofs::fs::CofsFs::new(
        pfs::fs::PfsFs::new(cluster, pfs::config::PfsConfig::default()),
        cofs::config::CofsConfig::default(),
        net,
        2026,
    )
}

/// Builds the bare-GPFS stack used for comparisons.
pub fn demo_gpfs(nodes: usize) -> pfs::fs::PfsFs {
    let cluster = netsim::cluster::ClusterBuilder::new()
        .clients(nodes)
        .servers(2)
        .build();
    pfs::fs::PfsFs::new(cluster, pfs::config::PfsConfig::default())
}
