//! Namespace operations that stay *pure metadata* under COFS: rename,
//! hard links, symlinks, and chmod never touch the underlying
//! filesystem — the mapping moves with the virtual inode.

use cofs_examples::demo_stack;
use netsim::ids::NodeId;
use vfs::fs::{FileSystem, OpCtx};
use vfs::path::vpath;
use vfs::types::Mode;

fn main() -> Result<(), vfs::error::FsError> {
    let mut fs = demo_stack(2);
    let ctx = OpCtx::test(NodeId(0));
    fs.mkdir(&ctx, &vpath("/v1"), Mode::dir_default())?;
    fs.mkdir(&ctx, &vpath("/v2"), Mode::dir_default())?;
    let t = fs.create(&ctx, &vpath("/v1/data"), Mode::file_default())?;
    let c = ctx.at(t.end);
    let w = fs.write(&c, t.value, 0, 1 << 20)?;
    fs.close(&ctx.at(w.end), t.value)?;

    let before = fs.counters().get("under_creates") + fs.counters().get("under_unlinks");
    fs.rename(&ctx, &vpath("/v1/data"), &vpath("/v2/data"))?;
    fs.link(&ctx, &vpath("/v2/data"), &vpath("/v1/alias"))?;
    fs.symlink(&ctx, "/v2/data", &vpath("/v1/sym"))?;
    let after = fs.counters().get("under_creates") + fs.counters().get("under_unlinks");

    println!("rename + hard link + symlink performed.");
    println!(
        "underlying file operations during all three: {}",
        after - before
    );
    println!(
        "nlink of /v2/data: {}",
        fs.stat(&ctx, &vpath("/v2/data"))?.value.nlink
    );
    println!("read through the symlink:");
    let t = fs.open(&ctx, &vpath("/v1/sym"), vfs::types::OpenFlags::RDONLY)?;
    let r = fs.read(&ctx.at(t.end), t.value, 0, 1 << 20)?;
    println!("  got {} bytes", r.value);
    fs.close(&ctx.at(r.end), t.value)?;
    Ok(())
}
