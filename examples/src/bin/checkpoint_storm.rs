//! The paper's first motivating scenario (§II): a parallel application
//! where "each node dumps its relevant data into a different file" in
//! a common directory. Compares bare GPFS against COFS over GPFS.

use cofs_examples::{demo_gpfs, demo_stack};
use workloads::scenarios::CheckpointStorm;

fn main() {
    let storm = CheckpointStorm::default();
    println!(
        "checkpoint storm: {} nodes x {} rounds, {} MiB per node per round\n",
        storm.nodes,
        storm.rounds,
        storm.bytes_per_node / (1024 * 1024)
    );
    let g = storm.run(&mut demo_gpfs(storm.nodes));
    println!(
        "bare GPFS:      makespan {:>10}  mean create {:>7.2} ms",
        g.makespan, g.mean_create_ms
    );
    let c = storm.run(&mut demo_stack(storm.nodes));
    println!(
        "COFS over GPFS: makespan {:>10}  mean create {:>7.2} ms",
        c.makespan, c.mean_create_ms
    );
    println!(
        "\ncreate speed-up: {:.1}x",
        g.mean_create_ms / c.mean_create_ms.max(1e-9)
    );
}
