//! Quickstart: COFS in five minutes.
//!
//! Creates a virtual directory tree through the COFS layer, then shows
//! the decoupling: the user-visible view keeps the layout applications
//! want, while the underlying filesystem sees small hashed
//! directories.

use cofs_examples::demo_stack;
use netsim::ids::NodeId;
use vfs::fs::{FileSystem, OpCtx};
use vfs::path::vpath;
use vfs::types::{Gid, Mode, Uid};

fn main() -> Result<(), vfs::error::FsError> {
    let mut fs = demo_stack(4);
    let ctx = OpCtx::test(NodeId(0));

    // The layout the application wants: everything in one directory.
    fs.mkdir(&ctx, &vpath("/results"), Mode::dir_default())?;
    for node in 0..4u32 {
        let nctx = OpCtx::test(NodeId(node));
        for i in 0..8 {
            let p = vpath(&format!("/results/out.{node}.{i}"));
            let t = fs.create(&nctx, &p, Mode::file_default())?;
            let c = nctx.at(t.end);
            let w = fs.write(&c, t.value, 0, 4096)?;
            fs.close(&nctx.at(w.end), t.value)?;
        }
    }

    println!("virtual view of /results:");
    for e in fs.readdir(&ctx, &vpath("/results"))?.value {
        println!("  {} ({})", e.name, e.ftype);
    }

    // Under the hood: no /results at all, just hashed directories.
    let daemon = OpCtx {
        uid: Uid(0),
        gid: Gid(0),
        ..ctx
    };
    println!("\nunderlying layout (what GPFS actually sees):");
    let mut stack = vec![vpath("/.cofs")];
    while let Some(dir) = stack.pop() {
        let entries = fs.under_mut().readdir(&daemon, &dir)?.value;
        let files = entries
            .iter()
            .filter(|e| e.ftype == vfs::types::FileType::Regular)
            .count();
        if files > 0 {
            println!("  {dir}  ({files} files)");
        }
        for e in entries {
            if e.ftype == vfs::types::FileType::Directory {
                stack.push(dir.join(&e.name));
            }
        }
    }
    println!(
        "\nunderlying token revocations: {}",
        fs.under().token_stats().get("revocations")
    );
    Ok(())
}
