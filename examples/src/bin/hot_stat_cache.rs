//! Client-side metadata caching in action.
//!
//! Every node polls the same read-only tree (shared binaries, config
//! files, input datasets — the stat-storm pattern monitoring tools
//! produce). Without the client cache every `stat` pays a full round
//! trip to the metadata shard; with lease-based caching only the first
//! touch per node misses, and a deliberate mutation at the end shows
//! the coherence machinery recalling leases so nobody ever sees stale
//! state.

use cofs::config::{CofsConfig, MdsNetwork};
use cofs::fs::CofsFs;
use netsim::ids::NodeId;
use simcore::time::SimDuration;
use vfs::fs::{FileSystem, OpCtx};
use vfs::memfs::MemFs;
use vfs::path::vpath;
use vfs::types::{Mode, SetAttr};
use workloads::scenarios::HotStatStorm;

fn stack(cfg: CofsConfig) -> CofsFs<MemFs> {
    CofsFs::new(
        MemFs::new(),
        cfg,
        MdsNetwork::uniform(SimDuration::from_micros(250)),
        2026,
    )
}

fn main() {
    let storm = HotStatStorm {
        nodes: 8,
        dirs: 2,
        files_per_dir: 16,
        rounds: 6,
        ..HotStatStorm::default()
    };
    println!(
        "hot-stat storm: {} nodes × {} rounds over {} read-only files\n",
        storm.nodes,
        storm.rounds,
        storm.files()
    );

    let mut plain = stack(CofsConfig::default());
    let r_plain = storm.run(&mut plain);
    println!(
        "cache off : makespan {:>8.2} ms, mean stat {:.3} ms",
        r_plain.makespan.as_millis_f64(),
        r_plain.mean_stat_ms
    );

    let cached_cfg = CofsConfig::default().with_client_cache(4096, SimDuration::from_secs(30));
    let mut cached = stack(cached_cfg);
    let r_cached = storm.run(&mut cached);
    let stats = r_cached.cache.expect("cache enabled");
    println!(
        "cache on  : makespan {:>8.2} ms, mean stat {:.3} ms  \
         ({} hits / {} misses, {:.1}% hit rate)",
        r_cached.makespan.as_millis_f64(),
        r_cached.mean_stat_ms,
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    println!(
        "speedup   : {:.1}x on simulated wall time\n",
        r_plain.makespan.as_secs_f64() / r_cached.makespan.as_secs_f64()
    );

    // Coherence: node 1 leases a file, node 0 chmods it — the lease
    // comes back (visible in the recall counters) and node 1 sees the
    // new mode immediately.
    let (watcher, owner) = (OpCtx::test(NodeId(1)), OpCtx::test(NodeId(0)));
    let target = vpath("/hot/d0/f0");
    cached.stat(&watcher, &target).unwrap();
    owner_chmod(&mut cached, &owner, 0o640);
    let seen = cached.stat(&watcher, &target).unwrap().value.mode;
    println!(
        "after a chmod by node 0: node 1 reads mode {seen} (recall messages so far: {})",
        cached.cache_stats().recall_messages
    );
}

fn owner_chmod(fs: &mut CofsFs<MemFs>, owner: &OpCtx, mode: u16) {
    fs.setattr(
        owner,
        &vpath("/hot/d0/f0"),
        SetAttr {
            mode: Some(Mode::new(mode)),
            ..SetAttr::default()
        },
    )
    .unwrap();
}
