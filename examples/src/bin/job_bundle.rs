//! The paper's second motivating scenario (§II): "smaller applications
//! are typically launched in large bunches, and users configure them
//! to write the different output files also in a shared directory."

use cofs_examples::{demo_gpfs, demo_stack};
use workloads::scenarios::JobBundle;

fn main() {
    let bundle = JobBundle::default();
    println!(
        "job bundle: {} nodes x {} jobs x {} files ({} KiB each)\n",
        bundle.nodes,
        bundle.jobs_per_node,
        bundle.files_per_job,
        bundle.bytes_per_file / 1024
    );
    let g = bundle.run(&mut demo_gpfs(bundle.nodes));
    println!(
        "bare GPFS:      makespan {:>10}  mean create {:>7.2} ms",
        g.makespan, g.mean_create_ms
    );
    let c = bundle.run(&mut demo_stack(bundle.nodes));
    println!(
        "COFS over GPFS: makespan {:>10}  mean create {:>7.2} ms",
        c.makespan, c.mean_create_ms
    );
    println!(
        "\nmakespan improvement: {:.1}x",
        g.makespan.as_secs_f64() / c.makespan.as_secs_f64().max(1e-9)
    );
}
