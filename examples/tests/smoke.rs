//! Smoke tests: every example binary must run to completion, so the
//! documented entrypoints cannot silently rot.

use std::process::Command;

fn run_smoke(exe: &str) {
    let out = Command::new(exe)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !out.stdout.is_empty(),
        "{exe} produced no output — examples are expected to narrate"
    );
}

#[test]
fn quickstart_runs() {
    run_smoke(env!("CARGO_BIN_EXE_quickstart"));
}

#[test]
fn checkpoint_storm_runs() {
    run_smoke(env!("CARGO_BIN_EXE_checkpoint_storm"));
}

#[test]
fn job_bundle_runs() {
    run_smoke(env!("CARGO_BIN_EXE_job_bundle"));
}

#[test]
fn namespace_tour_runs() {
    run_smoke(env!("CARGO_BIN_EXE_namespace_tour"));
}

#[test]
fn hot_stat_cache_runs() {
    run_smoke(env!("CARGO_BIN_EXE_hot_stat_cache"));
}
