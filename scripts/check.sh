#!/usr/bin/env bash
# Full local CI gate. Everything here must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cofs-analyze (workspace determinism lint)"
cargo run -q -p cofs-analyze --release

echo "==> cofs-analyze self-check (gate must trip on the seeded fixture)"
if cargo run -q -p cofs-analyze --release -- --strict crates/analyze/fixtures >/dev/null 2>&1; then
    echo "cofs-analyze failed to flag the seeded fixture violations" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> RUSTDOCFLAGS=-Dwarnings cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo bench -p cofs-bench --no-run"
cargo bench -p cofs-bench --no-run

echo "All checks passed."
