#!/usr/bin/env python3
"""CI gate on the machine-readable benchmark report.

Reads ``BENCH_scaling.json`` (written by ``cargo run -p cofs-bench
--bin scaling``; see ``write_bench_json`` in ``crates/bench/src/lib.rs``)
and fails when a structural performance claim regressed:

1. **Storm throughput is monotone in shard count** — the
   "shared-directory storm vs shard count" section's ``creates/s``
   column must be non-decreasing as ``shards`` grows, through the
   claimed scaling regime (<= 4 shards; beyond that the full sweep
   deliberately explores saturation, where per-shard skew makes more
   shards a wash).
2. **Batching improves the bursty storm monotonically** — the
   "shared-directory storm vs batching" section's ``makespan (ms)``
   must not increase along ``max_batch_ops`` 1 -> 4 -> 16, and the
   largest batch size must beat batching off.
3. **Batching never regresses read-only work** — in the "batching
   non-wins" section, the hot-stat rows with batching on must match the
   batching-off makespan (reads never batch).
4. **Read memoization never costs and pays at scale** — in the "bursty
   storm vs read memoization" section, the memoized makespan must not
   exceed the unmemoized one at *every* batch size (a batch of one
   memoizes nothing, so that row is equality), and at the largest batch
   size memoization must strictly beat both the unmemoized run and the
   batching-off baseline — the post-PR-4 per-op-row-work ceiling.
5. **Write-behind journaling never costs on the swept axis and pays at
   scale** — in the "bursty storm vs write-behind journal" section
   (memoization on throughout), the journaled makespan must not exceed
   the journal-off one at *every* swept batch size, must strictly beat
   it at the largest, and the coalescing must be real: every
   journal-on row applies strictly fewer rows than it acked
   (``coalesced`` > 0) while journal-off rows coalesce nothing.
6. **The read-priority lane decouples stat tails from batch size** —
   in the "mixed stat+create storm vs read priority" section, the
   priority rows' stat p99 must not exceed the FIFO rows' at any batch
   size; the FIFO p99 at the largest batch must visibly exceed the
   priority p99 (head-of-line blocking is real and the lane removes
   it); and the priority p99 at the largest batch must stay within
   TAIL_GROWTH_CAP of the priority batching-off p99 (bounded by the
   in-service lump, not the queue, so it no longer grows with
   ``max_batch_ops``).
7. **The elastic policy adapts instead of saturating** — in the
   "shared-directory storm vs shard count" section, the elastic rows'
   ``creates/s`` must be *strictly* monotone across every swept shard
   count (the static claim stops at MAX_CLAIMED_SHARDS; load-adaptive
   splitting is what carries scaling past the directory count), and in
   the "skewed multi-tenant storm vs shard policy" section the elastic
   makespan must be at or below the best static policy's at every
   swept shard count.
8. **Failover degrades boundedly and loses nothing** — in the
   "failover storm vs crash timing" section, every crash row must
   report zero ``lost acked`` ops (journal-acked work survives
   recovery replay), a positive ``nacks`` count (the scripted crash
   was actually observed and ridden out on retries rather than
   silently missed), an availability ``gap`` covering at least the
   scripted downtime, and a makespan within FAILOVER_SLACK of its
   fault-free baseline row plus the gap and the priced recovery work
   (the slack absorbs the post-recovery convoy when backlogged
   clients return together).
9. **The correlated-failure survival knobs actually pay** — in the
   "cascade storm vs correlated failures" section, every fault row
   must report zero ``lost acked`` ops; every standby-on row must
   strictly shrink the availability ``gap`` against its knobs-matched
   standby-off row *and* beat the ``loops x down`` scripted floor the
   cold restart waits out (with every crash absorbed by a promotion);
   and on the convoy-visible standby-off rows, admission control must
   strictly shrink the post-recovery makespan (retry-after pacing
   replaces backoff overshoot).

Cells are printed at two decimals, so comparisons allow one unit of
rounding slack (0.011 ms / 1 create/s). Stdlib only; exit status 0 on
success, 1 on any failed check.

Usage: bench_check.py [path/to/BENCH_scaling.json]
"""

import json
import sys

ROUNDING_MS = 0.011
ROUNDING_RATE = 1.0
MAX_CLAIMED_SHARDS = 4
# A priority-lane stat still waits out the lump *in service* at its
# arrival, so its p99 may sit a bounded factor above the unbatched
# baseline — but it must not track the queue depth the way FIFO does.
TAIL_GROWTH_CAP = 2.0
# A crashed storm pays the scripted gap and the priced recovery work,
# then a convoy: every backlogged client returns at once, so queueing
# stretches beyond the additive bound. The multiplicative slack caps
# that convoy without excusing an unbounded wedge. The full sweep's
# worst observed ratio is ~1.53 (no-journal, late crash, narrow
# shards); 1.7 leaves ~10% headroom without re-admitting a wedge.
FAILOVER_SLACK = 1.7

failures = []


def check(ok, message):
    tag = "ok  " if ok else "FAIL"
    print(f"  [{tag}] {message}")
    if not ok:
        failures.append(message)


def section(report, title):
    for s in report["sections"]:
        if s["title"] == title:
            return s
    print(f"  [FAIL] section missing: {title!r}")
    failures.append(f"missing section {title!r}")
    return None


def column(sec, name):
    try:
        return sec["headers"].index(name)
    except ValueError:
        failures.append(f"column {name!r} missing in {sec['title']!r}")
        print(f"  [FAIL] column missing: {name!r} in {sec['title']!r}")
        return None


def check_shard_monotonicity(report):
    print("shared-directory storm vs shard count:")
    sec = section(report, "shared-directory storm vs shard count")
    if sec is None:
        return
    shards_col = column(sec, "shards")
    rate_col = column(sec, "creates/s")
    if shards_col is None or rate_col is None:
        return
    policy_col = column(sec, "policy")
    static_rows = [
        r
        for r in sec["rows"]
        if policy_col is None or r[policy_col] != "elastic"
    ]
    rows = sorted(static_rows, key=lambda r: float(r[shards_col]))
    check(len(rows) >= 2, f"at least two shard counts swept ({len(rows)} rows)")
    for prev, cur in zip(rows, rows[1:]):
        if float(cur[shards_col]) > MAX_CLAIMED_SHARDS:
            continue  # saturation regime, no monotonicity claim
        ok = float(cur[rate_col]) >= float(prev[rate_col]) - ROUNDING_RATE
        check(
            ok,
            f"creates/s monotone {prev[shards_col]} -> {cur[shards_col]} shards "
            f"({prev[rate_col]} -> {cur[rate_col]})",
        )


def check_batching_monotonicity(report):
    print("shared-directory storm vs batching:")
    sec = section(report, "shared-directory storm vs batching")
    if sec is None:
        return
    batch_col = column(sec, "batching")
    make_col = column(sec, "makespan (ms)")
    if batch_col is None or make_col is None:
        return
    off = [r for r in sec["rows"] if r[batch_col] == "off"]
    on = sorted(
        (r for r in sec["rows"] if r[batch_col] != "off"),
        key=lambda r: int(r[batch_col]),
    )
    check(len(off) == 1, "one batching-off baseline row")
    check(len(on) >= 3, f"max_batch_ops sweep has >= 3 points ({len(on)} rows)")
    for prev, cur in zip(on, on[1:]):
        ok = float(cur[make_col]) <= float(prev[make_col]) + ROUNDING_MS
        check(
            ok,
            f"makespan monotone max_batch_ops {prev[batch_col]} -> {cur[batch_col]} "
            f"({prev[make_col]} -> {cur[make_col]} ms)",
        )
    if off and on:
        best = on[-1]
        ok = float(best[make_col]) < float(off[0][make_col])
        check(
            ok,
            f"largest batch ({best[batch_col]} ops, {best[make_col]} ms) beats "
            f"batching off ({off[0][make_col]} ms)",
        )


def check_hot_stat_non_regression(report):
    print("batching non-wins:")
    sec = section(report, "batching non-wins")
    if sec is None:
        return
    wl_col = column(sec, "workload")
    batch_col = column(sec, "batching")
    make_col = column(sec, "makespan (ms)")
    if wl_col is None or batch_col is None or make_col is None:
        return
    hot = [r for r in sec["rows"] if "hot-stat" in r[wl_col]]
    off = [r for r in hot if r[batch_col] == "off"]
    on = [r for r in hot if r[batch_col] != "off"]
    check(bool(off) and bool(on), "hot-stat measured with batching off and on")
    if not (off and on):
        return
    for row in on:
        ok = float(row[make_col]) <= float(off[0][make_col]) + ROUNDING_MS
        check(
            ok,
            f"batching {row[batch_col]} does not regress hot-stat makespan "
            f"({off[0][make_col]} -> {row[make_col]} ms)",
        )


def check_memoization(report):
    print("bursty storm vs read memoization:")
    sec = section(report, "bursty storm vs read memoization")
    if sec is None:
        return
    batch_col = column(sec, "batching")
    memo_col = column(sec, "memo")
    make_col = column(sec, "makespan (ms)")
    if batch_col is None or memo_col is None or make_col is None:
        return
    off_baseline = [r for r in sec["rows"] if r[batch_col] == "off"]
    check(len(off_baseline) == 1, "one batching-off baseline row")
    sizes = sorted(
        {int(r[batch_col]) for r in sec["rows"] if r[batch_col] != "off"}
    )
    check(len(sizes) >= 3, f"batch-size sweep has >= 3 points ({sizes})")

    def row(size, memo):
        for r in sec["rows"]:
            if r[batch_col] != "off" and int(r[batch_col]) == size and r[memo_col] == memo:
                return r
        return None

    for size in sizes:
        plain, memo = row(size, "off"), row(size, "on")
        if plain is None or memo is None:
            check(False, f"batch size {size} measured with memo off and on")
            continue
        ok = float(memo[make_col]) <= float(plain[make_col]) + ROUNDING_MS
        check(
            ok,
            f"memoized <= unmemoized at {size}-op batches "
            f"({memo[make_col]} vs {plain[make_col]} ms)",
        )
    largest = sizes[-1]
    plain, memo = row(largest, "off"), row(largest, "on")
    if plain is not None and memo is not None:
        check(
            float(memo[make_col]) < float(plain[make_col]),
            f"memoization strictly beats unmemoized at {largest}-op batches "
            f"({memo[make_col]} vs {plain[make_col]} ms)",
        )
        if off_baseline:
            check(
                float(memo[make_col]) < float(off_baseline[0][make_col]),
                f"memoized {largest}-op storm beats batching off "
                f"({memo[make_col]} vs {off_baseline[0][make_col]} ms)",
            )


def check_write_behind(report):
    print("bursty storm vs write-behind journal:")
    sec = section(report, "bursty storm vs write-behind journal")
    if sec is None:
        return
    batch_col = column(sec, "batching")
    wb_col = column(sec, "write-behind")
    make_col = column(sec, "makespan (ms)")
    coal_col = column(sec, "coalesced")
    if batch_col is None or wb_col is None or make_col is None or coal_col is None:
        return
    sizes = sorted({int(r[batch_col]) for r in sec["rows"]})
    check(len(sizes) >= 3, f"batch-size sweep has >= 3 points ({sizes})")

    def row(size, wb):
        for r in sec["rows"]:
            if int(r[batch_col]) == size and r[wb_col] == wb:
                return r
        return None

    for size in sizes:
        plain, behind = row(size, "off"), row(size, "on")
        if plain is None or behind is None:
            check(False, f"batch size {size} measured with write-behind off and on")
            continue
        ok = float(behind[make_col]) <= float(plain[make_col]) + ROUNDING_MS
        check(
            ok,
            f"write-behind <= journal-off at {size}-op batches "
            f"({behind[make_col]} vs {plain[make_col]} ms)",
        )
        check(
            float(behind[coal_col]) > 0,
            f"journal-on coalesces sibling rows at {size}-op batches "
            f"({behind[coal_col]} rows)",
        )
        check(
            float(plain[coal_col]) == 0,
            f"journal-off coalesces nothing at {size}-op batches "
            f"({plain[coal_col]} rows)",
        )
    largest = sizes[-1]
    plain, behind = row(largest, "off"), row(largest, "on")
    if plain is not None and behind is not None:
        check(
            float(behind[make_col]) < float(plain[make_col]),
            f"write-behind strictly beats the memoized-only storm at "
            f"{largest}-op batches ({behind[make_col]} vs {plain[make_col]} ms)",
        )


def check_read_priority(report):
    print("mixed stat+create storm vs read priority:")
    sec = section(report, "mixed stat+create storm vs read priority")
    if sec is None:
        return
    batch_col = column(sec, "batching")
    lane_col = column(sec, "lane")
    p99_col = column(sec, "stat p99 (ms)")
    if batch_col is None or lane_col is None or p99_col is None:
        return

    def row(batching, lane):
        for r in sec["rows"]:
            if r[batch_col] == batching and r[lane_col] == lane:
                return r
        return None

    batchings = []
    for r in sec["rows"]:
        if r[batch_col] not in batchings:
            batchings.append(r[batch_col])
    check(len(batchings) >= 3, f"batching sweep has >= 3 points ({batchings})")
    for b in batchings:
        fifo, prio = row(b, "fifo"), row(b, "priority")
        if fifo is None or prio is None:
            check(False, f"batching {b} measured under fifo and priority")
            continue
        ok = float(prio[p99_col]) <= float(fifo[p99_col]) + ROUNDING_MS
        check(
            ok,
            f"priority stat p99 <= fifo at batching {b} "
            f"({prio[p99_col]} vs {fifo[p99_col]} ms)",
        )
    on_sizes = [b for b in batchings if b != "off"]
    if not on_sizes:
        return
    largest = max(on_sizes, key=int)
    fifo_l, prio_l = row(largest, "fifo"), row(largest, "priority")
    prio_off = row("off", "priority")
    if fifo_l is None or prio_l is None or prio_off is None:
        check(False, "largest-batch and batching-off rows present for both lanes")
        return
    check(
        float(fifo_l[p99_col]) > float(prio_l[p99_col]) + ROUNDING_MS,
        f"fifo p99 at {largest}-op batches exceeds priority "
        f"({fifo_l[p99_col]} vs {prio_l[p99_col]} ms): the lane's win is real",
    )
    cap = TAIL_GROWTH_CAP * float(prio_off[p99_col]) + ROUNDING_MS
    check(
        float(prio_l[p99_col]) <= cap,
        f"priority p99 at {largest}-op batches ({prio_l[p99_col]} ms) stays within "
        f"{TAIL_GROWTH_CAP}x of its batching-off value ({prio_off[p99_col]} ms)",
    )


def check_elastic(report):
    print("elastic policy (storm scaling + skewed tenants):")
    sec = section(report, "shared-directory storm vs shard count")
    if sec is not None:
        shards_col = column(sec, "shards")
        policy_col = column(sec, "policy")
        rate_col = column(sec, "creates/s")
        if shards_col is not None and policy_col is not None and rate_col is not None:
            rows = sorted(
                (r for r in sec["rows"] if r[policy_col] == "elastic"),
                key=lambda r: float(r[shards_col]),
            )
            check(
                len(rows) >= 2,
                f"elastic swept at >= 2 shard counts ({len(rows)} rows)",
            )
            for prev, cur in zip(rows, rows[1:]):
                # Strict: load-adaptive splitting must keep *gaining*
                # through every swept count, where the static rows are
                # allowed to saturate past MAX_CLAIMED_SHARDS.
                check(
                    float(cur[rate_col]) > float(prev[rate_col]),
                    f"elastic creates/s strictly grows {prev[shards_col]} -> "
                    f"{cur[shards_col]} shards ({prev[rate_col]} -> {cur[rate_col]})",
                )
    sec = section(report, "skewed multi-tenant storm vs shard policy")
    if sec is None:
        return
    shards_col = column(sec, "shards")
    policy_col = column(sec, "policy")
    make_col = column(sec, "makespan (ms)")
    if shards_col is None or policy_col is None or make_col is None:
        return
    counts = []
    for r in sec["rows"]:
        if r[shards_col] not in counts:
            counts.append(r[shards_col])
    check(bool(counts), f"skewed storm swept >= 1 shard count ({counts})")
    for n in counts:
        rows = [r for r in sec["rows"] if r[shards_col] == n]
        statics = [r for r in rows if r[policy_col] != "elastic"]
        elastic = [r for r in rows if r[policy_col] == "elastic"]
        if not statics or len(elastic) != 1:
            check(
                False,
                f"{n} shards measured with static policies and one elastic row",
            )
            continue
        best = min(float(r[make_col]) for r in statics)
        got = float(elastic[0][make_col])
        check(
            got <= best + ROUNDING_MS,
            f"elastic makespan beats best static at {n} shards "
            f"({got} vs {best} ms)",
        )


def check_failover(report):
    print("failover storm vs crash timing:")
    sec = section(report, "failover storm vs crash timing")
    if sec is None:
        return
    cols = {
        name: column(sec, name)
        for name in (
            "shards",
            "journal",
            "crash at (ms)",
            "down (ms)",
            "makespan (ms)",
            "nacks",
            "lost acked",
            "gap (ms)",
            "recovery (ms)",
        )
    }
    if any(v is None for v in cols.values()):
        return
    shards_col = cols["shards"]
    journal_col = cols["journal"]
    crash_col = cols["crash at (ms)"]
    down_col = cols["down (ms)"]
    make_col = cols["makespan (ms)"]
    nacks_col = cols["nacks"]
    lost_col = cols["lost acked"]
    gap_col = cols["gap (ms)"]
    rec_col = cols["recovery (ms)"]
    groups = []
    for r in sec["rows"]:
        key = (r[shards_col], r[journal_col])
        if key not in groups:
            groups.append(key)
    crash_rows = [r for r in sec["rows"] if r[crash_col] != "-"]
    check(bool(crash_rows), f"at least one crash row measured ({len(sec['rows'])} rows)")
    for shards, journal in groups:
        rows = [
            r
            for r in sec["rows"]
            if (r[shards_col], r[journal_col]) == (shards, journal)
        ]
        base = [r for r in rows if r[crash_col] == "-"]
        crashed = [r for r in rows if r[crash_col] != "-"]
        if len(base) != 1 or not crashed:
            check(
                False,
                f"{shards} shards (journal {journal}): one fault-free baseline "
                f"row and >= 1 crash row",
            )
            continue
        base_ms = float(base[0][make_col])
        for r in crashed:
            label = (
                f"{shards} shards, journal {journal}, "
                f"crash at {r[crash_col]} ms, down {r[down_col]} ms"
            )
            check(
                float(r[lost_col]) == 0,
                f"zero lost acked ops ({label}: {r[lost_col]})",
            )
            check(
                float(r[nacks_col]) > 0,
                f"crash observed and ridden out ({label}: {r[nacks_col]} nacks)",
            )
            check(
                float(r[gap_col]) >= float(r[down_col]) - ROUNDING_MS,
                f"availability gap covers the scripted downtime "
                f"({label}: gap {r[gap_col]} ms)",
            )
            bound = (
                FAILOVER_SLACK * (base_ms + float(r[gap_col]) + float(r[rec_col]))
                + ROUNDING_MS
            )
            check(
                float(r[make_col]) <= bound,
                f"crashed makespan bounded by (baseline + gap + recovery) x "
                f"{FAILOVER_SLACK} ({label}: {r[make_col]} <= {bound:.2f} ms)",
            )


def check_cascade(report):
    print("cascade storm vs correlated failures:")
    sec = section(report, "cascade storm vs correlated failures")
    if sec is None:
        return
    cols = {
        name: column(sec, name)
        for name in (
            "shards",
            "loops",
            "standby",
            "admission",
            "down (ms)",
            "makespan (ms)",
            "lost acked",
            "promoted",
            "gap (ms)",
        )
    }
    if any(v is None for v in cols.values()):
        return
    shards_col = cols["shards"]
    loops_col = cols["loops"]
    standby_col = cols["standby"]
    adm_col = cols["admission"]
    down_col = cols["down (ms)"]
    make_col = cols["makespan (ms)"]
    lost_col = cols["lost acked"]
    prom_col = cols["promoted"]
    gap_col = cols["gap (ms)"]
    fault_rows = [r for r in sec["rows"] if r[loops_col] != "-"]
    check(bool(fault_rows), f"at least one fault row measured ({len(sec['rows'])} rows)")

    def label(r):
        return (
            f"{r[shards_col]} shards, loops {r[loops_col]}, "
            f"standby {r[standby_col]}, admission {r[adm_col]}"
        )

    def match(rows, **want):
        sel = {
            "shards": shards_col,
            "loops": loops_col,
            "standby": standby_col,
            "admission": adm_col,
        }
        out = [
            r
            for r in rows
            if all(r[sel[k]] == v for k, v in want.items())
        ]
        return out[0] if len(out) == 1 else None

    for r in fault_rows:
        check(
            float(r[lost_col]) == 0,
            f"zero lost acked ops ({label(r)}: {r[lost_col]})",
        )
    for r in fault_rows:
        if r[standby_col] != "on":
            continue
        cold = match(
            fault_rows,
            shards=r[shards_col],
            loops=r[loops_col],
            standby="off",
            admission=r[adm_col],
        )
        if cold is None:
            check(False, f"knobs-matched standby-off row exists for {label(r)}")
            continue
        check(
            float(r[gap_col]) < float(cold[gap_col]),
            f"standby strictly shrinks the gap ({label(r)}: "
            f"{r[gap_col]} < {cold[gap_col]} ms)",
        )
        floor = float(r[loops_col]) * float(r[down_col])
        check(
            float(r[gap_col]) < floor,
            f"standby gap beats the loops x down scripted floor "
            f"({label(r)}: {r[gap_col]} < {floor:.2f} ms)",
        )
        check(
            float(r[prom_col]) > 0,
            f"crashes absorbed by promotion ({label(r)}: {r[prom_col]} promoted)",
        )
    for r in fault_rows:
        # The admission win is gated where the convoy is visible: on
        # the standby-off rows the whole backlog returns after a long
        # scripted outage, and retry-after pacing must strictly beat
        # backoff overshoot. (Behind a promotion the outage is too
        # short for a convoy to form, so no claim is made there.)
        if r[standby_col] != "off" or r[adm_col] != "on":
            continue
        unpaced = match(
            fault_rows,
            shards=r[shards_col],
            loops=r[loops_col],
            standby="off",
            admission="off",
        )
        if unpaced is None:
            check(False, f"admission-off partner row exists for {label(r)}")
            continue
        check(
            float(r[make_col]) < float(unpaced[make_col]),
            f"admission strictly shrinks the post-recovery makespan "
            f"({label(r)}: {r[make_col]} < {unpaced[make_col]} ms)",
        )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_scaling.json"
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read {path}: {e}")
        return 1
    print(f"checking {path} (bench={report.get('bench')!r}, smoke={report.get('smoke')})")
    check_shard_monotonicity(report)
    check_batching_monotonicity(report)
    check_hot_stat_non_regression(report)
    check_memoization(report)
    check_write_behind(report)
    check_read_priority(report)
    check_elastic(report)
    check_failover(report)
    check_cascade(report)
    if failures:
        print(f"\n{len(failures)} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
